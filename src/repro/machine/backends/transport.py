"""Transport layer: the wire protocol shared by every real backend.

This module owns the *framing* half of a real backend -- how one Python
object becomes bytes on a byte stream and back -- independent of what
that stream is.  Three stream flavors are wrapped today:

* :class:`PipeChannel` -- an OS pipe pair with a cross-process write
  lock (the ``mp`` backend's channel: many producer processes, one
  consumer);
* :class:`SocketChannel` -- one connected stream socket (the ``tcp``
  backend's channel: exactly one producer per direction, so no lock);
* :class:`MultiInbox` -- a single consumer endpoint multiplexing
  several channels (a tcp worker's inbox: commands from the driver and
  peer messages arrive on different sockets but drain through one
  ``get``).

Wire format
-----------
A *frame* is the unit every channel moves::

    [8B frame_len][8B meta_len][meta][spec][inline buffers...]

where ``spec`` is the protocol-5 pickle of the object with its
out-of-band ``PickleBuffer``\\ s elided and ``meta`` describes each
buffer: either ``(0, nbytes)`` -- the raw bytes follow inline in the
frame -- or ``(1, name, offset, nbytes)`` -- the bytes sit in a
shared-memory block (:mod:`repro.machine.backends.shm`) and only this
descriptor crosses the wire.  The sender never concatenates: header,
spec and buffer views go out through scatter-gather ``os.writev``
(:func:`write_views`), skipping zero-length views (``os.writev``
reports 0 bytes for them, which the advance loop would spin on
forever).  The receiver (:class:`FrameDecoder`) reassembles partial
reads, slices buffers back out of the frame as ``memoryview``\\ s --
frames of at least ``DIRECT_RX_MIN`` bytes land in a dedicated
``bytearray`` the decoded arrays then own -- and rebuilds the object
with ``pickle.loads(spec, buffers=...)``.  Shared-memory descriptors
are materialized (copied out of their segment) exactly once, at decode
time, which is what makes the sender's round-based block recycling
safe.  Channels whose peers never attach a pool (sockets) simply never
see a descriptor: the sender's ``pool`` is ``None`` and every buffer
rides inline.

All reads and writes are non-blocking with explicit ``EINTR`` retry;
writers invoke their ``drain`` callback while the stream is full so a
cycle of mutually-sending peers always makes progress (the deadlock
freedom the worker mesh relies on).
"""

from __future__ import annotations

import os
import pickle
import queue as queue_mod
import select
import socket as socket_mod
import time
from typing import Callable

__all__ = [
    "ALIAS_MIN",
    "COMPACT_MIN",
    "DIRECT_RX_MIN",
    "FrameDecoder",
    "MultiInbox",
    "NO_FRAME",
    "PipeChannel",
    "SocketChannel",
    "encode_frame",
    "write_views",
]

#: frames at least this big are received straight into a dedicated
#: buffer (skipping the shared read buffer entirely)
DIRECT_RX_MIN = 1 << 16

#: inline out-of-band buffers below this size are copied out of a
#: dedicated frame instead of aliasing it (a tiny array must not pin a
#: multi-megabyte frame alive)
ALIAS_MIN = 1 << 12

#: compact the shared read buffer once this many bytes are consumed
COMPACT_MIN = 1 << 16

#: sentinel: the decoder holds no complete frame yet
NO_FRAME = object()


# ----------------------------------------------------------------------
# Encoding (producer side)
# ----------------------------------------------------------------------

def encode_frame(obj, pool=None) -> tuple[list[memoryview], int, int]:
    """Encode ``obj`` into scatter-gather views ready for ``writev``.

    ``pool`` (a :class:`~repro.machine.backends.shm.ShmPool`) routes
    large pickle buffers through shared memory; ``None`` keeps every
    buffer inline.  Returns ``(views, frame_len, shm_bytes)`` where
    ``frame_len`` excludes the 8-byte length prefix and ``shm_bytes``
    counts payload bytes that left the wire for a segment.
    """
    bufs: list[pickle.PickleBuffer] = []

    def _keep_oob(pb: pickle.PickleBuffer):
        # pickle's convention: a falsy return takes the buffer
        # out-of-band, a truthy one serializes it in-band
        try:
            pb.raw()
        except BufferError:  # non-contiguous: let pickle copy in-band
            return True
        bufs.append(pb)
        return False

    spec = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL,
                        buffer_callback=_keep_oob)
    bufspecs: list[tuple] = []
    tail: list[memoryview] = []
    inline_bytes = 0
    shm_bytes = 0
    for pb in bufs:
        raw = pb.raw()
        nbytes = raw.nbytes
        desc = pool.share(raw) if pool is not None else None
        if desc is None:
            bufspecs.append((0, nbytes))
            tail.append(raw)
            inline_bytes += nbytes
        else:
            # (lane, segment, data offset, nbytes, release-flag offset)
            bufspecs.append((1, desc[0], desc[1], nbytes, desc[2]))
            shm_bytes += nbytes
    meta = pickle.dumps((len(spec), tuple(bufspecs)),
                        protocol=pickle.HIGHEST_PROTOCOL)
    frame_len = 8 + len(meta) + len(spec) + inline_bytes
    head = frame_len.to_bytes(8, "little") + len(meta).to_bytes(8, "little") + meta
    # drop empty views (zero-length buffers): os.writev reports 0
    # bytes for them, which the advance loop would spin on forever
    views = [v for v in [memoryview(head), memoryview(spec), *tail] if len(v)]
    return views, frame_len, shm_bytes


def write_views(fd: int, views: list[memoryview],
                drain: Callable | None = None) -> None:
    """Write the views to a non-blocking ``fd``, handling short writes,
    ``EINTR`` and full buffers (``drain()`` is invoked while waiting so
    the caller can keep consuming its own inbox)."""
    os.set_blocking(fd, False)
    while views:
        try:
            written = os.writev(fd, views[:1024])
        except InterruptedError:  # EINTR: retry the call itself
            continue
        except BlockingIOError:
            if drain is not None:
                drain()
            _wait(fd, 0.005, write=True)
            continue
        while written:
            v = views[0]
            if written >= len(v):
                written -= len(v)
                views.pop(0)
            else:
                views[0] = v[written:]
                written = 0


def _wait(fd: int, timeout: float, write: bool = False) -> None:
    try:
        if write:
            select.select([], [fd], [], timeout)
        else:
            select.select([fd], [], [], timeout)
    except InterruptedError:  # EINTR: the caller's loop re-waits
        pass


# ----------------------------------------------------------------------
# Decoding (consumer side)
# ----------------------------------------------------------------------

class FrameDecoder:
    """Reassembles length-prefixed frames out of one byte stream.

    Stateful and fd-agnostic: :meth:`fill` drains whatever the given
    non-blocking fd holds into the read buffer (partial frames stay
    buffered; frames of at least ``DIRECT_RX_MIN`` bytes switch to a
    dedicated buffer the decoded arrays later own), :meth:`pop` decodes
    the next complete frame or returns :data:`NO_FRAME`.  The shared
    read buffer compacts amortizedly (``COMPACT_MIN``) instead of being
    ``del``-shifted per frame.
    """

    __slots__ = ("_rbuf", "_roff", "_direct", "wire_rx", "shm_rx")

    def __init__(self):
        self._rbuf = bytearray()
        self._roff = 0           # consumed prefix of _rbuf
        self._direct = None      # [bytearray, filled] of an in-flight big frame
        #: consumer-side byte counters
        self.wire_rx = 0
        self.shm_rx = 0

    def fill(self, fd: int) -> bool:
        """Read whatever ``fd`` holds; returns True if bytes arrived."""
        os.set_blocking(fd, False)
        got = False
        while True:
            direct = self._direct
            if direct is not None:
                frame, filled = direct
                want = len(frame) - filled
                if want == 0:
                    return got
                try:
                    n = os.readv(fd, [memoryview(frame)[filled:]])
                except InterruptedError:  # EINTR: retry
                    continue
                except BlockingIOError:
                    return got
                if n == 0:
                    raise EOFError("channel closed by peer")
                direct[1] = filled + n
                got = True
                continue
            try:
                piece = os.read(fd, 1 << 16)
            except InterruptedError:  # EINTR: retry
                continue
            except BlockingIOError:
                return got
            if not piece:
                raise EOFError("channel closed by peer")
            self._rbuf += piece
            got = True
            # a large frame header may just have landed: switch the
            # remainder of that frame to the dedicated direct buffer
            if self._maybe_go_direct():
                continue

    def _maybe_go_direct(self) -> bool:
        """If the buffer starts with a large, incomplete frame, move its
        prefix into a dedicated buffer that the rest is read into."""
        avail = len(self._rbuf) - self._roff
        if avail < 8:
            return False
        n = int.from_bytes(self._rbuf[self._roff:self._roff + 8], "little")
        if n < DIRECT_RX_MIN or avail >= 8 + n:
            return False
        frame = bytearray(n)
        have = avail - 8
        frame[:have] = memoryview(self._rbuf)[self._roff + 8:]
        self._rbuf.clear()
        self._roff = 0
        self._direct = [frame, have]
        return True

    def _decode(self, body: memoryview, pool, copy_buffers: bool):
        """Reassemble one frame body (everything after the length
        prefix) into its object, materializing buffer descriptors."""
        meta_len = int.from_bytes(body[:8], "little")
        spec_len, bufspecs = pickle.loads(body[8:8 + meta_len])
        off = 8 + meta_len
        spec = body[off:off + spec_len]
        off += spec_len
        buffers = []
        for bs in bufspecs:
            if bs[0] == 0:
                nbytes = bs[1]
                piece = body[off:off + nbytes]
                off += nbytes
                if copy_buffers or nbytes < ALIAS_MIN:
                    piece = bytearray(piece)
                buffers.append(piece)
            else:
                # 5-tuple descriptors carry the block's release-flag
                # offset and decode zero-copy; 4-tuple ones (legacy
                # producers) fall back to a private copy
                _, name, boff, nbytes, *rest = bs
                if pool is None:
                    raise RuntimeError(
                        "received a shared-memory payload descriptor on a "
                        "channel with no pool attached"
                    )
                foff = rest[0] if rest else None
                buffers.append(pool.materialize(name, boff, nbytes, foff))
                self.shm_rx += nbytes
        obj = pickle.loads(spec, buffers=buffers)
        self.wire_rx += 8 + len(body)
        return obj

    def pop(self, pool=None):
        """Decode the next complete frame, or return :data:`NO_FRAME`."""
        direct = self._direct
        if direct is not None:
            frame, filled = direct
            if filled < len(frame):
                return NO_FRAME
            self._direct = None
            # the decoded arrays alias (and keep alive) the dedicated
            # frame buffer -- no further copy
            return self._decode(memoryview(frame), pool, copy_buffers=False)
        self._maybe_go_direct()
        if self._direct is not None:
            return self.pop(pool)
        avail = len(self._rbuf) - self._roff
        if avail < 8:
            return NO_FRAME
        n = int.from_bytes(self._rbuf[self._roff:self._roff + 8], "little")
        if avail < 8 + n:
            return NO_FRAME
        body = memoryview(self._rbuf)[self._roff + 8:self._roff + 8 + n]
        try:
            # copy_buffers: decoded objects must not alias the shared
            # read buffer (compaction would corrupt them)
            obj = self._decode(body, pool, copy_buffers=True)
        finally:
            body.release()
        self._roff += 8 + n
        if self._roff >= COMPACT_MIN:
            del self._rbuf[:self._roff]
            self._roff = 0
        return obj


# ----------------------------------------------------------------------
# Channels
# ----------------------------------------------------------------------

class PipeChannel:
    """Multi-producer, single-consumer frame channel over an OS pipe.

    ``multiprocessing.Queue`` routes every message through a per-process
    feeder thread -- two scheduler hops per hop, which dominates the
    latency of fine-grained collective schedules.  This channel writes
    frames straight into the pipe under a cross-process lock (like
    ``SimpleQueue``), with two additions that make it safe for worker
    meshes:

    * **timed receive** -- ``get(timeout)`` waits on the pipe with
      ``select``, so workers can still detect an orphaned driver;
    * **deadlock-free sends** -- writes are non-blocking; when the pipe
      is full (payload bigger than the kernel buffer and a busy
      receiver) the writer invokes its ``drain`` callback to consume its
      *own* inbox while waiting, so a cycle of mutually-sending workers
      always makes progress.

    Frames stay contiguous because the write lock is held for the whole
    frame; the single reader reassembles partial reads through its
    :class:`FrameDecoder`.
    """

    def __init__(self, ctx):
        self._reader, self._writer = ctx.Pipe(duplex=False)
        self._wlock = ctx.Lock()
        self._dec = FrameDecoder()

    @property
    def wire_rx(self) -> int:
        return self._dec.wire_rx

    @property
    def shm_rx(self) -> int:
        return self._dec.shm_rx

    # -- producer side -------------------------------------------------
    def put(self, obj, drain: Callable | None = None, pool=None,
            counters: dict | None = None) -> None:
        """Send one message.  ``pool`` routes large pickle buffers
        through shared memory; ``counters`` (keys ``wire_tx``/``shm_tx``)
        receives this message's byte accounting."""
        views, frame_len, shm_bytes = encode_frame(obj, pool)
        while not self._wlock.acquire(timeout=0.005):
            if drain is not None:
                drain()
        try:
            write_views(self._writer.fileno(), views, drain)
        finally:
            self._wlock.release()
        if counters is not None:
            counters["wire_tx"] += 8 + frame_len
            counters["shm_tx"] += shm_bytes

    # -- consumer side (single reader) ---------------------------------
    def get(self, timeout: float | None = None, pool=None):
        deadline = None if timeout is None else time.monotonic() + timeout
        fd = self._reader.fileno()
        while True:
            obj = self._dec.pop(pool)
            if obj is not NO_FRAME:
                return obj
            try:
                filled = self._dec.fill(fd)
            except EOFError:
                # the peer's final frame and its EOF can land in one
                # fill: surface buffered frames before reporting EOF
                obj = self._dec.pop(pool)
                if obj is NO_FRAME:
                    raise
                return obj
            if filled:
                continue
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise queue_mod.Empty
            _wait(fd, remaining if remaining is not None else 1.0)

    # -- lifecycle (mirrors the mp.Queue calls the pool makes) ---------
    def close_writer(self) -> None:
        """Close only this process's write end (injected ``sever``
        fault): once every writer end is gone the reader sees EOF."""
        try:
            self._writer.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def close(self) -> None:
        try:
            self._reader.close()
            self._writer.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def cancel_join_thread(self) -> None:  # no feeder thread to join
        pass


class SocketChannel:
    """One connected stream socket as a frame channel.

    Each direction of a TCP connection has exactly one producer process
    (the mesh gives every ordered peer pair its own direction), so no
    write lock is needed; a frame stays contiguous because ``put``
    writes it whole before returning.  ``TCP_NODELAY`` is set so the
    fine-grained collective schedules are not serialized by Nagle
    batching.
    """

    def __init__(self, sock: socket_mod.socket):
        self._sock = sock
        try:
            sock.setsockopt(socket_mod.IPPROTO_TCP, socket_mod.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - e.g. AF_UNIX socketpair
            pass
        self._dec = FrameDecoder()

    @property
    def wire_rx(self) -> int:
        return self._dec.wire_rx

    @property
    def shm_rx(self) -> int:
        return self._dec.shm_rx

    def fileno(self) -> int:
        return self._sock.fileno()

    # -- producer side -------------------------------------------------
    def put(self, obj, drain: Callable | None = None, pool=None,
            counters: dict | None = None) -> None:
        views, frame_len, shm_bytes = encode_frame(obj, pool)
        write_views(self._sock.fileno(), views, drain)
        if counters is not None:
            counters["wire_tx"] += 8 + frame_len
            counters["shm_tx"] += shm_bytes

    # -- consumer side ---------------------------------------------------
    def fill(self) -> bool:
        return self._dec.fill(self._sock.fileno())

    def pop(self, pool=None):
        return self._dec.pop(pool)

    def get(self, timeout: float | None = None, pool=None):
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            obj = self._dec.pop(pool)
            if obj is not NO_FRAME:
                return obj
            try:
                filled = self.fill()
            except EOFError:
                # final frame and FIN can land in one fill: surface
                # buffered frames before reporting EOF
                obj = self._dec.pop(pool)
                if obj is NO_FRAME:
                    raise
                return obj
            if filled:
                continue
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise queue_mod.Empty
            _wait(self._sock.fileno(), remaining if remaining is not None else 1.0)

    # -- lifecycle -------------------------------------------------------
    def shutdown(self) -> None:
        """Hard-cut both directions (injected ``sever`` fault): the peer
        sees EOF on its next read, unlike ``close`` which only drops our
        fd reference."""
        try:
            self._sock.shutdown(socket_mod.SHUT_RDWR)
        except OSError:  # pragma: no cover - already disconnected
            pass

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def cancel_join_thread(self) -> None:
        pass


class MultiInbox:
    """Single consumer endpoint over several frame channels.

    ``get`` returns the next complete frame from *any* source channel
    (per-source FIFO order is preserved -- each fd has its own decoder;
    cross-source order is irrelevant because runtime items are tagged).
    EOF on a non-primary source quietly removes it (a peer that already
    shut down); EOF on the ``primary`` channel raises, because losing
    the driver is fatal.
    """

    def __init__(self):
        self._chans: dict[int, SocketChannel] = {}
        self._primary: SocketChannel | None = None
        # counters of removed channels live on (cumulative accounting)
        self._rx_base = [0, 0]

    def add(self, chan: SocketChannel, primary: bool = False) -> None:
        self._chans[chan.fileno()] = chan
        if primary:
            self._primary = chan

    @property
    def wire_rx(self) -> int:
        return self._rx_base[0] + sum(c.wire_rx for c in self._chans.values())

    @property
    def shm_rx(self) -> int:
        return self._rx_base[1] + sum(c.shm_rx for c in self._chans.values())

    def _drop(self, fd: int) -> None:
        chan = self._chans.pop(fd)
        self._rx_base[0] += chan.wire_rx
        self._rx_base[1] += chan.shm_rx
        chan.close()

    def get(self, timeout: float | None = None, pool=None):
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            moved = False
            for fd in list(self._chans):
                chan = self._chans.get(fd)
                if chan is None:  # pragma: no cover - dropped this pass
                    continue
                obj = chan.pop(pool)
                if obj is not NO_FRAME:
                    return obj
                try:
                    moved |= chan.fill()
                except EOFError:
                    # a peer's final frame and its FIN can land in the
                    # same fill -- drain buffered frames before the
                    # channel is dropped (or the driver loss surfaced)
                    obj = chan.pop(pool)
                    if obj is not NO_FRAME:
                        return obj
                    if chan is self._primary:
                        raise
                    self._drop(fd)
            if moved:
                continue
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise queue_mod.Empty
            if not self._chans:
                raise EOFError("every source channel closed")
            try:
                select.select(list(self._chans), [], [],
                              remaining if remaining is not None else 1.0)
            except InterruptedError:  # EINTR: loop re-waits
                pass

    def close(self) -> None:
        for fd in list(self._chans):
            self._drop(fd)

    def cancel_join_thread(self) -> None:
        pass
