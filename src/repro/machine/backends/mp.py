"""Multiprocessing launcher: one forked worker process per PE.

This module is deliberately thin.  The wire protocol (protocol-5
out-of-band framing, scatter-gather ``writev``/``readv``, partial-read
reassembly) lives in :mod:`repro.machine.backends.transport`; the
worker command loop, resident chunk store, exchange schedules and the
driver-side dispatch live in :mod:`repro.machine.backends.runtime`.
What remains here is the *launch wiring* specific to a single host:

* fork one daemon process per PE (``multiprocessing`` context,
  ``start_method`` selectable);
* one :class:`~repro.machine.backends.transport.PipeChannel` inbox per
  worker plus a shared results channel -- pipes with a cross-process
  write lock, since every peer writes into every inbox;
* the shared-memory bulk lane (:mod:`repro.machine.backends.shm`):
  buffers at or above the threshold are copied once into pooled
  ``multiprocessing.shared_memory`` blocks, only ``(name, offset,
  nbytes, flag_offset)`` descriptors cross the pipe, and receivers
  decode the blocks zero-copy in place (per-block release flags tell
  the owner when a block is dead).  Recycling and the close-time
  segment reaping are supervised here because only this launcher has a
  shm lane (``supports_shm``); the ``tcp`` launcher runs the identical
  runtime with the lane absent.

Every PE of the machine is backed by a long-lived OS process.  Two
kinds of state live in the workers: **transient collective payloads**
(each PE's contribution travels to its worker, the workers exchange
among themselves, each returns its own result) and **resident chunks**
(:class:`~repro.machine.dist_array.DistArray` data pinned behind
:class:`~repro.machine.backends.base.ChunkRef` handles, operated on by
``map_resident``/``run_spmd`` callbacks next to the data).

Combination orders replicate :class:`~repro.machine.backends.sim.
SimBackend` exactly -- reductions gather all contributions and combine
them in binomial-tree order, scans combine in rank order -- so every
value collective (and with it all the package's pipelines) is
bit-identical to the simulated run, including floating-point
reductions.  The one carve-out is :meth:`Machine.aggregate_exchange`
with *float* values, whose merge association differs between routing
paths (integer counts, the package-wide case, stay bit-identical).

Caveats
-------
* Payloads, resident callbacks and callable reduction ops must be
  picklable.  The named ops (``"sum"``, ``"min"``, ``"max"``) always
  are; ``map`` and ``map_resident`` fall back to driver-side execution
  when the function cannot cross a process boundary.
* Worker pools are cleaned up by ``close()`` (idempotent), by
  ``Machine``'s context manager, and by an ``atexit`` guard that
  terminates any pool leaked by a crashed driver.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable

from .runtime import RuntimeBackend, WorkerLinks, worker_loop
from .shm import ShmPool, env_threshold, new_token, pool_family, reap_segments
from .transport import PipeChannel

__all__ = ["MultiprocessingBackend"]

#: "caller gave no value" marker for the shm-threshold override
_UNSET = object()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

class _PipeLinks(WorkerLinks):
    """Pipe binding of one worker: every peer's inbox is reachable
    directly (the channel ends are inherited across the fork), results
    ride a channel shared by the whole pool."""

    def __init__(self, rank, p, inboxes, results, pool, parent_pid,
                 faults=None):
        super().__init__(rank, p, pool, parent_pid, faults=faults)
        self._inboxes = inboxes
        self._results = results

    def send(self, dst: int, item, drain: Callable | None = None) -> None:
        self._inboxes[dst].put(item, drain=drain, pool=self.pool,
                               counters=self.counters)

    def send_result(self, item, drain: Callable | None = None,
                    pool: bool = True) -> None:
        self._results.put(item, drain=drain,
                          pool=self.pool if pool else None,
                          counters=self.counters)

    def recv(self, timeout: float | None = None):
        return self._inboxes[self.rank].get(timeout=timeout, pool=self.pool)

    def close(self) -> None:
        if self.pool is not None:
            self.pool.close()

    # -- fault-injection hooks -----------------------------------------
    def sever(self, peer: int) -> None:
        # drop our inherited write end of the peer's inbox pipe; the
        # peer only sees EOF once every other holder closes too, so on
        # mp a sever starves the next exchange with that peer (the
        # driver's "hung" detector picks it up)
        self._inboxes[peer].close_writer()

    def send_result_truncated(self, item) -> None:
        from ..faults import truncated_frame_bytes
        from .transport import write_views

        raw = truncated_frame_bytes(item)
        with self._results._wlock:
            write_views(self._results._writer.fileno(), [memoryview(raw)])


def _worker_main(rank, p, inboxes, results, parent_pid, shm_family=None,
                 shm_threshold=None, faults=None, kernels=None):
    """Entry point of one PE worker (module-level for spawn support):
    set the kernel mode, build the pipe links + shm pool, then run the
    shared command loop."""
    if kernels is not None:
        from ...kernels import set_mode

        set_mode(kernels)
    pool = (
        ShmPool(shm_family, f"w{rank}", shm_threshold)
        if shm_family is not None else None
    )
    worker_loop(_PipeLinks(rank, p, inboxes, results, pool, parent_pid,
                           faults=faults))


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------

class MultiprocessingBackend(RuntimeBackend):
    """One OS process per PE; collectives move real pickled messages and
    DistArray chunks stay resident in the workers."""

    name = "mp"
    is_real = True
    supports_oob_pickle = True

    def __init__(
        self,
        p: int,
        *,
        start_method: str | None = None,
        shm_threshold: int | None | object = _UNSET,
        verify: bool = False,
        pipeline_depth: int = 8,
        command_timeout: float | None = None,
        faults=None,
        journal: bool = False,
        kernels: str | None = None,
    ):
        super().__init__(p, verify=verify, pipeline_depth=pipeline_depth,
                         command_timeout=command_timeout, faults=faults,
                         journal=journal, kernels=kernels)
        self._ctx = multiprocessing.get_context(start_method)
        self._workers: list = []
        # -- zero-copy payload lane ------------------------------------
        if shm_threshold is _UNSET:
            shm_threshold = env_threshold()
        if shm_threshold is not None and shm_threshold <= 0:
            shm_threshold = None  # "0 disables", like REPRO_SHM_THRESHOLD
        self._shm_threshold = shm_threshold
        self._shm_family = pool_family(new_token())
        self._pool = ShmPool(self._shm_family, "d", shm_threshold)

    @property
    def supports_shm(self) -> bool:
        return self._pool.enabled

    @property
    def shm_threshold(self) -> int | None:
        return self._shm_threshold

    # ------------------------------------------------------------------
    # Pool lifecycle (RuntimeBackend hooks)
    # ------------------------------------------------------------------
    def _start_pool(self) -> None:
        # start the resource tracker BEFORE forking, so every worker
        # inherits the one live tracker process: shared-memory
        # registrations then deduplicate in a single cache and the
        # owner's unlink clears them (a worker that lazily spawned its
        # own tracker would "clean up" the driver's live segments at
        # worker exit)
        try:
            from multiprocessing import resource_tracker
            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - non-POSIX fallback
            pass
        self._inboxes = [PipeChannel(self._ctx) for _ in range(self.p)]
        self._results = PipeChannel(self._ctx)
        self._workers = [
            self._ctx.Process(
                target=_worker_main,
                args=(rank, self.p, self._inboxes, self._results, os.getpid(),
                      self._shm_family, self._shm_threshold,
                      self.faults.for_rank(rank) if self.faults else None,
                      self.kernels_mode),
                daemon=True,
                name=f"repro-pe-{rank}",
            )
            for rank in range(self.p)
        ]
        for w in self._workers:
            w.start()

    def _join_workers(self) -> None:
        for w in self._workers:
            w.join(timeout=5.0)

    def _teardown(self) -> None:
        for w in self._workers:
            if w.is_alive():  # pragma: no cover - cleanup path
                w.terminate()
                w.join(timeout=1.0)
        for q in self._inboxes:
            q.close()
            q.cancel_join_thread()
        if self._results is not None:
            self._results.close()
            self._results.cancel_join_thread()
        # segment lifecycle backstop: unlink the driver pool's
        # segments and reap any a killed worker left behind, so no
        # shared memory outlives the backend
        self._pool.close()
        reap_segments(self._shm_family)

    def _teardown_idle(self) -> None:
        self._pool.close()

    def _reset_for_restart(self) -> None:
        # recovery restarts the whole pool (the pipe mesh is inherited
        # at fork, so a single respawned rank could not rejoin it); a
        # fresh shm family keeps old reaped segments from colliding
        super()._reset_for_restart()
        self._workers = []
        self._shm_family = pool_family(new_token())
        self._pool = ShmPool(self._shm_family, "d", self._shm_threshold)

    def _dead_workers(self) -> list[str]:
        return [w.name for w in self._workers if not w.is_alive()]

    def _dead_ranks(self) -> list[int]:
        return [r for r, w in enumerate(self._workers) if not w.is_alive()]
