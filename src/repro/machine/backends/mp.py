"""Real shared-memory execution: one worker process per PE.

Every PE of the machine is backed by a long-lived OS process.  Two
kinds of state live in the workers:

* **transient collective payloads** -- a collective ships each PE's
  contribution to its worker, the workers exchange among themselves and
  each returns its own result to the driver;
* **resident chunks** -- :class:`~repro.machine.dist_array.DistArray`
  data pinned behind :class:`~repro.machine.backends.base.ChunkRef`
  handles.  Per-PE algorithm callbacks (``map_resident``) execute inside
  the workers, next to the data; only small per-PE values (sample
  arrays, partition counts) return to the driver, and an optional fused
  value collective (``allgather``/``allreduce``) runs in the same round
  trip.  Chunks never round-trip through the driver per collective.

Combination orders replicate :class:`~repro.machine.backends.sim.
SimBackend` exactly -- reductions gather all contributions and combine
them in binomial-tree order, scans combine in rank order -- so every
value collective (and with it all the package's pipelines) is
bit-identical to the simulated run, including floating-point
reductions.  The one carve-out is :meth:`Machine.aggregate_exchange`
with *float* values, whose merge association differs between routing
paths (integer counts, the package-wide case, stay bit-identical).

Wire protocol
-------------
Messages are protocol-5 pickles whose out-of-band buffers travel on two
lanes (the *zero-copy data plane*): small buffers ride the pipe inline
via scatter-gather ``os.writev`` framing (no concatenation on send, no
``bytes()`` copy on receive), and buffers at or above the shm threshold
are copied once into a :mod:`~repro.machine.backends.shm` segment block
while only a ``(name, offset, nbytes)`` descriptor crosses the pipe.
Block recycling is round-based: the driver recycles when a command's
results are all in, a worker when the next command (strictly larger
sequence number) arrives -- both points at which every receiver of the
finished round has provably decoded (and thereby copied) its payloads.

The driver issues one command per operation, tagged with a monotonically
increasing sequence number.  Full-pool commands ride the **broadcast
command channel**: the driver writes a single frame (spec + the per-PE
locals map) to rank 0's inbox and the workers fan it out along the
binomial tree, each forwarding its children their subtree's slice of
the locals -- O(1) driver sends (:attr:`MultiprocessingBackend.
driver_sends`) and exactly ``p - 1`` worker forwards
(:meth:`MultiprocessingBackend.command_fanout_counts`) instead of ``p``
serialized driver writes.  Partial-participant commands (``p2p``) keep
the direct per-worker path.  Workers exchange peer messages tagged with
the same sequence number (plus a per-schedule round tag) and stash
anything that arrives early, so fast workers can run ahead without
confusing slow ones.  Worker-to-worker exchanges follow logarithmic
schedules instead of direct O(p^2) delivery:

* rooted collectives (broadcast, reduce, gather, scatter) walk a
  binomial tree -- ``p - 1`` messages, ``log p`` depth;
* symmetric collectives (allgather, allreduce, scan, the fused
  ``allreduce_exscan``/``reduce_allgather`` and the value collectives
  fused into ``map_resident``) use the dissemination (Bruck) schedule
  -- ``p * ceil(log2 p)`` messages on any ``p``, power of two or not;
* ``alltoall`` store-and-forwards along the same hop sequence
  (hypercube routing, Leighton Thm 3.24) -- ``p * ceil(log2 p)``
  messages instead of ``p * (p - 1)``.

Every worker counts its sends; :meth:`MultiprocessingBackend.
worker_message_counts` exposes the totals so tests can assert the
O(p log p) bound.

Caveats
-------
* Payloads, resident callbacks and callable reduction ops must be
  picklable.  The named ops (``"sum"``, ``"min"``, ``"max"``) always
  are; ``map`` and ``map_resident`` fall back to driver-side execution
  when the function cannot cross a process boundary.
* Worker pools are cleaned up by ``close()`` (idempotent), by
  ``Machine``'s context manager, and by an ``atexit`` guard that
  terminates any pool leaked by a crashed driver.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import queue as queue_mod
import select
import time
import weakref
from collections import deque
from typing import Callable, Sequence

from ..collectives import (
    binomial_edges,
    binomial_subtrees,
    bruck_hops,
    bruck_send_blocks,
    inclusive_scan,
    tree_reduce_order,
)
from .base import (
    Backend,
    ChunkRef,
    _apply_resident,
    _collect_values,
    _run_spmd_inprocess,
)
from .shm import ShmPool, env_threshold, new_token, pool_family, reap_segments

__all__ = ["MultiprocessingBackend"]

#: seconds to wait for a worker before declaring the pool dead
_TIMEOUT = 120.0

#: "caller gave no value" marker for the shm-threshold override
_UNSET = object()

#: pools that still own live worker processes (for the atexit guard)
_LIVE_POOLS: "weakref.WeakSet[MultiprocessingBackend]" = weakref.WeakSet()
_ATEXIT_REGISTERED = False


def _close_leaked_pools() -> None:  # pragma: no cover - interpreter exit path
    for backend in list(_LIVE_POOLS):
        try:
            backend.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Transport: low-latency zero-copy message channels
# ----------------------------------------------------------------------

#: frames at least this big are received straight into a dedicated
#: buffer (skipping the shared read buffer entirely)
_DIRECT_RX_MIN = 1 << 16

#: inline out-of-band buffers below this size are copied out of a
#: dedicated frame instead of aliasing it (a tiny array must not pin a
#: multi-megabyte frame alive)
_ALIAS_MIN = 1 << 12

#: compact the shared read buffer once this many bytes are consumed
_COMPACT_MIN = 1 << 16

_NO_FRAME = object()


class _Channel:
    """Multi-producer, single-consumer message channel over an OS pipe.

    ``multiprocessing.Queue`` routes every message through a per-process
    feeder thread -- two scheduler hops per hop, which dominates the
    latency of fine-grained collective schedules.  This channel writes
    frames straight into the pipe under a lock (like ``SimpleQueue``),
    with two additions that make it safe for worker meshes:

    * **timed receive** -- ``get(timeout)`` waits on the pipe with
      ``select``, so workers can still detect an orphaned driver;
    * **deadlock-free sends** -- writes are non-blocking; when the pipe
      is full (payload bigger than the kernel buffer and a busy
      receiver) the writer invokes its ``drain`` callback to consume its
      *own* inbox while waiting, so a cycle of mutually-sending workers
      always makes progress.

    Framing is zero-copy in both directions.  A frame is::

        [8B frame_len][8B meta_len][meta][spec][inline buffers...]

    where ``spec`` is the protocol-5 pickle of the object with its
    out-of-band ``PickleBuffer``s elided and ``meta`` describes each
    buffer: either ``(0, nbytes)`` -- the raw bytes follow inline in the
    frame -- or ``(1, name, offset, nbytes)`` -- the bytes sit in a
    shared-memory block (:mod:`repro.machine.backends.shm`) and only
    this descriptor crosses the pipe.  The sender never concatenates:
    header, spec and buffer views go out through scatter-gather
    ``os.writev``.  The receiver slices buffers back out of the frame as
    ``memoryview``s (large frames land in a dedicated ``bytearray`` the
    decoded arrays then own) and reassembles the object with
    ``pickle.loads(spec, buffers=...)``; shared-memory descriptors are
    copied out of their segment exactly once, at decode time, which is
    what makes the sender's round-based block recycling safe.

    Frames stay contiguous because the write lock is held for the whole
    frame; the single reader reassembles partial reads in a local
    buffer, compacted amortizedly (``_COMPACT_MIN``) instead of
    ``del``-shifted per frame.
    """

    def __init__(self, ctx):
        self._reader, self._writer = ctx.Pipe(duplex=False)
        self._wlock = ctx.Lock()
        self._rbuf = bytearray()
        self._roff = 0           # consumed prefix of _rbuf
        self._direct = None      # [bytearray, filled] of an in-flight big frame
        #: consumer-side byte counters (each process sees its own copy
        #: of the channel object, so these count that process's traffic)
        self.wire_rx = 0
        self.shm_rx = 0

    # -- producer side -------------------------------------------------
    def put(self, obj, drain: Callable | None = None, pool=None,
            counters: dict | None = None) -> None:
        """Send one message.  ``pool`` (a :class:`~repro.machine.
        backends.shm.ShmPool`) routes large pickle buffers through
        shared memory; ``counters`` (keys ``wire_tx``/``shm_tx``)
        receives this message's byte accounting."""
        bufs: list[pickle.PickleBuffer] = []

        def _keep_oob(pb: pickle.PickleBuffer):
            # pickle's convention: a falsy return takes the buffer
            # out-of-band, a truthy one serializes it in-band
            try:
                pb.raw()
            except BufferError:  # non-contiguous: let pickle copy in-band
                return True
            bufs.append(pb)
            return False

        spec = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL,
                            buffer_callback=_keep_oob)
        bufspecs: list[tuple] = []
        tail: list[memoryview] = []
        inline_bytes = 0
        shm_bytes = 0
        for pb in bufs:
            raw = pb.raw()
            nbytes = raw.nbytes
            desc = pool.share(raw) if pool is not None else None
            if desc is None:
                bufspecs.append((0, nbytes))
                tail.append(raw)
                inline_bytes += nbytes
            else:
                bufspecs.append((1, desc[0], desc[1], nbytes))
                shm_bytes += nbytes
        meta = pickle.dumps((len(spec), tuple(bufspecs)),
                            protocol=pickle.HIGHEST_PROTOCOL)
        frame_len = 8 + len(meta) + len(spec) + inline_bytes
        head = frame_len.to_bytes(8, "little") + len(meta).to_bytes(8, "little") + meta
        # drop empty views (zero-length buffers): os.writev reports 0
        # bytes for them, which the advance loop would spin on forever
        views = [v for v in [memoryview(head), memoryview(spec), *tail] if len(v)]
        while not self._wlock.acquire(timeout=0.005):
            if drain is not None:
                drain()
        try:
            fd = self._writer.fileno()
            os.set_blocking(fd, False)
            while views:
                try:
                    written = os.writev(fd, views[:1024])
                except BlockingIOError:
                    if drain is not None:
                        drain()
                    select.select([], [fd], [], 0.005)
                    continue
                while written:
                    v = views[0]
                    if written >= len(v):
                        written -= len(v)
                        views.pop(0)
                    else:
                        views[0] = v[written:]
                        written = 0
        finally:
            self._wlock.release()
        if counters is not None:
            counters["wire_tx"] += 8 + frame_len
            counters["shm_tx"] += shm_bytes

    # -- consumer side (single reader) ---------------------------------
    def _decode(self, body: memoryview, pool, copy_buffers: bool):
        """Reassemble one frame body (everything after the length
        prefix) into its object, materializing buffer descriptors."""
        meta_len = int.from_bytes(body[:8], "little")
        spec_len, bufspecs = pickle.loads(body[8:8 + meta_len])
        off = 8 + meta_len
        spec = body[off:off + spec_len]
        off += spec_len
        buffers = []
        for bs in bufspecs:
            if bs[0] == 0:
                nbytes = bs[1]
                piece = body[off:off + nbytes]
                off += nbytes
                if copy_buffers or nbytes < _ALIAS_MIN:
                    piece = bytearray(piece)
                buffers.append(piece)
            else:
                _, name, boff, nbytes = bs
                if pool is None:
                    raise RuntimeError(
                        "received a shared-memory payload descriptor on a "
                        "channel with no pool attached"
                    )
                buffers.append(pool.materialize(name, boff, nbytes))
                self.shm_rx += nbytes
        obj = pickle.loads(spec, buffers=buffers)
        self.wire_rx += 8 + len(body)
        return obj

    def _fill(self) -> bool:
        """Read whatever the pipe holds; returns True if bytes arrived."""
        fd = self._reader.fileno()
        os.set_blocking(fd, False)
        got = False
        while True:
            direct = self._direct
            if direct is not None:
                frame, filled = direct
                want = len(frame) - filled
                if want == 0:
                    return got
                try:
                    n = os.readv(fd, [memoryview(frame)[filled:]])
                except BlockingIOError:
                    return got
                if n == 0:
                    raise EOFError("channel closed by peer")
                direct[1] = filled + n
                got = True
                continue
            try:
                piece = os.read(fd, 1 << 16)
            except BlockingIOError:
                return got
            if not piece:
                raise EOFError("channel closed by peer")
            self._rbuf += piece
            got = True
            # a large frame header may just have landed: switch the
            # remainder of that frame to the dedicated direct buffer
            if self._maybe_go_direct():
                continue

    def _maybe_go_direct(self) -> bool:
        """If the buffer starts with a large, incomplete frame, move its
        prefix into a dedicated buffer that the rest is read into."""
        avail = len(self._rbuf) - self._roff
        if avail < 8:
            return False
        n = int.from_bytes(self._rbuf[self._roff:self._roff + 8], "little")
        if n < _DIRECT_RX_MIN or avail >= 8 + n:
            return False
        frame = bytearray(n)
        have = avail - 8
        frame[:have] = memoryview(self._rbuf)[self._roff + 8:]
        self._rbuf.clear()
        self._roff = 0
        self._direct = [frame, have]
        return True

    def _pop_frame(self, pool):
        direct = self._direct
        if direct is not None:
            frame, filled = direct
            if filled < len(frame):
                return _NO_FRAME
            self._direct = None
            # the decoded arrays alias (and keep alive) the dedicated
            # frame buffer -- no further copy
            return self._decode(memoryview(frame), pool, copy_buffers=False)
        self._maybe_go_direct()
        if self._direct is not None:
            return self._pop_frame(pool)
        avail = len(self._rbuf) - self._roff
        if avail < 8:
            return _NO_FRAME
        n = int.from_bytes(self._rbuf[self._roff:self._roff + 8], "little")
        if avail < 8 + n:
            return _NO_FRAME
        body = memoryview(self._rbuf)[self._roff + 8:self._roff + 8 + n]
        try:
            # copy_buffers: decoded objects must not alias the shared
            # read buffer (compaction would corrupt them)
            obj = self._decode(body, pool, copy_buffers=True)
        finally:
            body.release()
        self._roff += 8 + n
        if self._roff >= _COMPACT_MIN:
            del self._rbuf[:self._roff]
            self._roff = 0
        return obj

    def get(self, timeout: float | None = None, pool=None):
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            obj = self._pop_frame(pool)
            if obj is not _NO_FRAME:
                return obj
            if self._fill():
                continue
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise queue_mod.Empty
            select.select([self._reader.fileno()], [], [],
                          remaining if remaining is not None else 1.0)

    # -- lifecycle (mirrors the mp.Queue calls the pool makes) ---------
    def close(self) -> None:
        try:
            self._reader.close()
            self._writer.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def cancel_join_thread(self) -> None:  # no feeder thread to join
        pass


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

class _Comm:
    """Per-collective messaging context of one worker.

    Messages are addressed by ``(seq, tag, src)`` where ``tag`` is the
    schedule round, so multi-round schedules can never confuse two
    messages from the same peer, and out-of-order arrivals from
    run-ahead peers are stashed for their own collective.
    """

    __slots__ = ("rank", "p", "seq", "inboxes", "backlog", "stash", "counters",
                 "pool", "parent_pid")

    def __init__(self, rank, p, inboxes, backlog, stash, counters, pool=None,
                 parent_pid=None):
        self.rank = rank
        self.p = p
        self.seq = 0
        self.inboxes = inboxes
        self.backlog = backlog
        self.stash = stash
        self.counters = counters
        self.pool = pool
        self.parent_pid = parent_pid

    def send(self, dst: int, tag: int, payload) -> None:
        self.inboxes[dst].put(
            ("msg", self.seq, tag, self.rank, payload),
            drain=self.drain, pool=self.pool, counters=self.counters,
        )
        self.counters["msgs"] += 1

    def drain(self) -> None:
        """Consume whatever already sits in this worker's inbox (called
        while a send waits on a full pipe, keeping the mesh live).

        Doubles as the liveness check of every blocked wait loop: a
        worker spinning on a full pipe or a contended write lock would
        otherwise outlive a killed driver forever, because the peers'
        inherited pipe ends keep EPIPE from ever firing.
        """
        if self.parent_pid is not None and os.getppid() != self.parent_pid:
            os._exit(1)  # orphaned: the driver is gone
        while True:
            try:
                item = self.inboxes[self.rank].get(timeout=0, pool=self.pool)
            except queue_mod.Empty:
                return
            if item[0] != "msg":
                self.backlog.append(item)
            else:
                _, mseq, mtag, msrc, payload = item
                self.stash[(mseq, mtag, msrc)] = payload

    def recv(self, src: int, tag: int):
        key = (self.seq, tag, src)
        if key in self.stash:
            return self.stash.pop(key)
        while True:
            item = self.inboxes[self.rank].get(timeout=_TIMEOUT, pool=self.pool)
            if item[0] != "msg":
                self.backlog.append(item)
                continue
            _, mseq, mtag, msrc, payload = item
            if (mseq, mtag, msrc) == key:
                return payload
            self.stash[(mseq, mtag, msrc)] = payload


# -- logarithmic worker schedules --------------------------------------

def _tree_bcast(comm: _Comm, root: int, value, tag: int = 0):
    """Binomial-tree broadcast: p-1 messages, log p depth."""
    edges = binomial_edges(comm.p, root)
    if comm.rank != root:
        parent = next(s for _, s, d in edges if d == comm.rank)
        value = comm.recv(parent, tag)
    for _, s, d in edges:
        if s == comm.rank:
            comm.send(d, tag, value)
    return value


def _tree_gather(comm: _Comm, root: int, local, tag: int = 1):
    """Binomial-tree gather of subtree bundles; rank-ordered list at
    ``root``, ``None`` elsewhere."""
    bundle = {comm.rank: local}
    for _, s, d in reversed(binomial_edges(comm.p, root)):
        if s == comm.rank:
            bundle.update(comm.recv(d, tag))
        elif d == comm.rank:
            comm.send(s, tag, bundle)
            return None
    return [bundle[j] for j in range(comm.p)]


def _tree_allgather(comm: _Comm, myval, tag_base: int = 1) -> list:
    """Gather-to-root + broadcast composition: ``2 (p - 1)`` messages,
    ``2 log p`` depth.  The message-count winner for the small values
    the reduction-type collectives combine; the payload-heavy allgather
    and alltoall use the dissemination/hypercube schedules instead."""
    vals = _tree_gather(comm, 0, myval, tag_base)
    return _tree_bcast(comm, 0, vals, tag_base + 16)


def _tree_scatter(comm: _Comm, root: int, pieces, tag: int = 2):
    """Binomial-tree scatter: parents forward each child its subtree's
    bundle; returns this PE's piece."""
    edges = binomial_edges(comm.p, root)
    if comm.rank == root:
        bundle = {j: pieces[j] for j in range(comm.p)}
    else:
        parent = next(s for _, s, d in edges if d == comm.rank)
        bundle = comm.recv(parent, tag)
    subtrees = binomial_subtrees(comm.p, root)
    for _, s, d in edges:
        if s == comm.rank:
            comm.send(d, tag, {j: bundle[j] for j in subtrees[d]})
    return bundle[comm.rank]


def _bruck_allgather(comm: _Comm, myval, tag_base: int = 3) -> list:
    """Dissemination allgather: ceil(log2 p) rounds on any p, one
    message per PE per round; returns the rank-ordered value list."""
    rank, p = comm.rank, comm.p
    blocks = {rank: myval}
    for tag, hop in enumerate(bruck_hops(p)):
        dst = (rank + hop) % p
        src = (rank - hop) % p
        send = bruck_send_blocks(p, rank, hop, list(blocks))
        comm.send(dst, tag_base + tag, {b: blocks[b] for b in send})
        blocks.update(comm.recv(src, tag_base + tag))
    return [blocks[j] for j in range(p)]


def _run_spmd_step(comm: _Comm, gen):
    """Drive one SPMD generator inside the worker: every yielded
    collective becomes a tree exchange with its own tag block."""
    tag_base = 100
    try:
        req = gen.send(None)
        while True:
            kind = req[0]
            if kind == "alltoall":
                res = _bruck_alltoall(comm, list(req[1]), tag_base)
                tag_base += 32
                req = gen.send(res)
                continue
            if kind == "sendrecv":
                # sparse direct exchange: payloads travel exactly one
                # hop (the plan's p2p schedule), message count = number
                # of non-empty pairs; the expected-sender lists come
                # from the driver so no discovery round is needed
                row, srcs = list(req[1]), req[2]
                for dst, payload in enumerate(row):
                    if dst != comm.rank and payload is not None:
                        comm.send(dst, tag_base, payload)
                res = [None] * comm.p
                res[comm.rank] = row[comm.rank]
                for src in srcs:
                    if src != comm.rank:
                        res[src] = comm.recv(src, tag_base)
                tag_base += 32
                req = gen.send(res)
                continue
            gathered = _tree_allgather(comm, req[1], tag_base)
            tag_base += 32
            if kind == "allgather":
                res = gathered
            elif kind == "allreduce":
                res = tree_reduce_order(gathered, req[2])
            elif kind == "allreduce_exscan":
                op, initial = req[2], req[3]
                total = tree_reduce_order(gathered, op)
                res = (
                    total,
                    initial if comm.rank == 0 else inclusive_scan(gathered, op)[comm.rank - 1],
                )
            else:
                raise ValueError(f"unknown SPMD collective {kind!r}")
            req = gen.send(res)
    except StopIteration as stop:
        return stop.value


def _bruck_alltoall(comm: _Comm, row, tag_base: int = 20) -> list:
    """Store-and-forward personalized exchange along the dissemination
    hop sequence: each payload travels the binary decomposition of its
    rank offset, p * ceil(log2 p) messages total."""
    rank, p = comm.rank, comm.p
    # (src, remaining_offset, payload); offset 0 means delivered
    pending = [(rank, (j - rank) % p, row[j]) for j in range(p) if j != rank]
    delivered = {rank: row[rank]}
    for tag, hop in enumerate(bruck_hops(p)):
        dst = (rank + hop) % p
        src = (rank - hop) % p
        moving = [(s, d - hop, v) for s, d, v in pending if d & hop]
        pending = [e for e in pending if not (e[1] & hop)]
        comm.send(dst, tag_base + tag, moving)
        for s, d, v in comm.recv(src, tag_base + tag):
            if d == 0:
                delivered[s] = v
            else:
                pending.append((s, d, v))
    return [delivered[j] for j in range(p)]


# -- command execution -------------------------------------------------

class _WorkerError:
    """Marker wrapping an exception that happened inside a worker."""

    def __init__(self, message: str):
        self.message = message


def _execute(comm: _Comm, spec, local, store):
    """Run one command on this worker; returns this PE's result."""
    rank, p = comm.rank, comm.p
    kind = spec[0]

    # -- resident chunk store ------------------------------------------
    if kind == "put":
        store[spec[1]] = local
        return None
    if kind == "get":
        return store[spec[1]]
    if kind == "mapres":
        fn = pickle.loads(spec[1])
        in_ids, out_ids, collect = spec[2], spec[3], spec[4]
        ins = [store[i] for i in in_ids]
        extra = tuple(local) if local is not None else ()
        res = fn(rank, *ins, *extra)
        if out_ids:
            if not isinstance(res, tuple) or len(res) != len(out_ids) + 1:
                raise ValueError(
                    f"resident callback must return {len(out_ids)} chunks "
                    f"+ 1 value, got {type(res).__name__}"
                )
            for oid, chunk in zip(out_ids, res):
                store[oid] = chunk
            value = res[len(out_ids)]
        else:
            value = res
        if collect is None:
            return value
        gathered = _tree_allgather(comm, value, 40)
        if collect[0] == "allgather":
            return value, gathered
        return value, tree_reduce_order(gathered, collect[1])
    if kind == "spmd":
        fn = pickle.loads(spec[1])
        in_ids, out_ids = spec[2], spec[3]
        ins = [store[i] for i in in_ids]
        extra = tuple(local) if local is not None else ()
        res = _run_spmd_step(comm, fn(rank, *ins, *extra))
        if out_ids:
            if not isinstance(res, tuple) or len(res) != len(out_ids) + 1:
                raise ValueError(
                    f"SPMD callback must return {len(out_ids)} chunks + 1 "
                    f"value, got {type(res).__name__}"
                )
            for oid, chunk in zip(out_ids, res):
                store[oid] = chunk
            return res[len(out_ids)]
        return res
    if kind == "stats":
        return {
            "msgs": comm.counters["msgs"],
            "cmd_fwd": comm.counters["cmd_fwd"],
            "wire_tx": comm.counters["wire_tx"],
            "shm_tx": comm.counters["shm_tx"],
            "resident": len(store),
        }
    if kind == "map":
        fn = pickle.loads(spec[1])
        return fn(rank, local)

    # -- collectives ---------------------------------------------------
    if kind == "bcast":
        return _tree_bcast(comm, spec[1], local)
    if kind == "reduce":
        op, root = spec[1], spec[2]
        recv = _tree_gather(comm, root, local)
        return None if recv is None else tree_reduce_order(recv, op)
    if kind == "allreduce":
        return tree_reduce_order(_tree_allgather(comm, local), spec[1])
    if kind == "scan":
        return inclusive_scan(_tree_allgather(comm, local), spec[1])[rank]
    if kind == "allreduce_exscan":
        op, initial = spec[1], spec[2]
        recv = _tree_allgather(comm, local)
        total = tree_reduce_order(recv, op)
        prefix = initial if rank == 0 else inclusive_scan(recv, op)[rank - 1]
        return total, prefix
    if kind == "reduce_allgather":
        op = spec[1]
        pairs = _tree_allgather(comm, local)
        total = tree_reduce_order([rv for rv, _ in pairs], op)
        return total, [gv for _, gv in pairs]
    if kind == "gather":
        return _tree_gather(comm, spec[1], local)
    if kind == "allgather":
        return _bruck_allgather(comm, local)
    if kind == "scatter":
        return _tree_scatter(comm, spec[1], local)
    if kind == "alltoall":
        return _bruck_alltoall(comm, list(local))
    if kind == "p2p":
        # pair operation: only src and dst receive this command, so the
        # rest of the pool keeps working undisturbed
        src, dst = spec[1], spec[2]
        if rank == src:
            comm.send(dst, 0, local)
            return None
        return comm.recv(src, 0)
    raise ValueError(f"unknown backend command {kind!r}")


def _worker_main(rank, p, inboxes, results, parent_pid, shm_family=None,
                 shm_threshold=None):
    """Command loop of one PE worker (module-level for spawn support)."""
    from .shm import ShmPool

    backlog: deque = deque()
    stash: dict = {}
    store: dict = {}
    pool = (
        ShmPool(shm_family, f"w{rank}", shm_threshold)
        if shm_family is not None else None
    )
    counters = {"msgs": 0, "cmd_fwd": 0, "wire_tx": 0, "shm_tx": 0}
    comm = _Comm(rank, p, inboxes, backlog, stash, counters, pool, parent_pid)
    # broadcast-command fan-out tree: the driver hands a full-pool command
    # to rank 0 only; every rank forwards its binomial-tree children their
    # subtree's slice of the per-PE locals
    tree_children = [d for _, s, d in binomial_edges(p, 0) if s == rank]
    subtree_of = binomial_subtrees(p, 0)
    last_seq = 0
    try:
        while True:
            if backlog:
                item = backlog.popleft()
            else:
                try:
                    item = inboxes[rank].get(timeout=5.0, pool=pool)
                except queue_mod.Empty:
                    # daemon workers survive a SIGKILL'd driver; bail out
                    # once the parent is gone instead of blocking forever
                    if os.getppid() != parent_pid:
                        return
                    continue
                except EOFError:
                    return  # driver closed the channel
            if item[0] == "msg":
                _, mseq, mtag, msrc, payload = item
                stash[(mseq, mtag, msrc)] = payload
                continue
            if item[0] == "bcmd":
                # forward first (children must not wait on our execution),
                # pruned to each child's subtree so every edge carries only
                # the locals its subtree needs (a rank's local still hops
                # once per tree edge on its root path -- which is why the
                # arg-heavy "put" command keeps the direct driver path)
                _, seq, spec, locals_map, free_ids = item
                if seq > last_seq and pool is not None:
                    # a new command proves the driver collected every
                    # result of the previous one, i.e. all our earlier
                    # shared blocks were copied out -- recycle them
                    pool.release_round()
                last_seq = max(last_seq, seq)
                for child in tree_children:
                    sub = {r: locals_map[r] for r in subtree_of[child] if r in locals_map}
                    inboxes[child].put(
                        ("bcmd", seq, spec, sub, free_ids),
                        drain=comm.drain, pool=pool, counters=counters,
                    )
                    comm.counters["cmd_fwd"] += 1
                item = ("cmd", seq, spec, locals_map.get(rank), free_ids)
            _, seq, spec, local, free_ids = item
            if seq > last_seq and pool is not None:
                pool.release_round()
            last_seq = max(last_seq, seq)
            for ref_id in free_ids:
                store.pop(ref_id, None)
            if spec[0] == "stop":
                results.put((rank, seq, None), drain=comm.drain,
                            counters=counters)
                return
            comm.seq = seq
            try:
                result = _execute(comm, spec, local, store)
                results.put((rank, seq, result), drain=comm.drain,
                            pool=pool, counters=counters)
            except Exception as exc:  # surface worker failures to the driver
                results.put((rank, seq, _WorkerError(repr(exc))),
                            drain=comm.drain, counters=counters)
    finally:
        if pool is not None:
            pool.close()


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------

class MultiprocessingBackend(Backend):
    """One OS process per PE; collectives move real pickled messages and
    DistArray chunks stay resident in the workers."""

    name = "mp"
    is_real = True
    supports_oob_pickle = True

    def __init__(
        self,
        p: int,
        *,
        start_method: str | None = None,
        shm_threshold: int | None | object = _UNSET,
    ):
        super().__init__(p)
        self._ctx = multiprocessing.get_context(start_method)
        self._seq = 0
        self._workers: list = []
        self._inboxes: list = []
        self._results = None
        self._started = False
        self._closed = False
        self._dead_refs: list[int] = []
        self._live_ids: set[int] = set()
        self._fn_blobs: dict[int, tuple[Callable, bytes]] = {}
        self._result_buffer: list = []
        #: driver-side channel writes issued for commands -- the fan-out
        #: the broadcast command channel bounds at O(1) per full-pool
        #: command (one frame to rank 0; workers tree-forward the rest)
        self.driver_sends: int = 0
        # -- zero-copy payload lane ------------------------------------
        if shm_threshold is _UNSET:
            shm_threshold = env_threshold()
        if shm_threshold is not None and shm_threshold <= 0:
            shm_threshold = None  # "0 disables", like REPRO_SHM_THRESHOLD
        self._shm_threshold = shm_threshold
        self._shm_family = pool_family(new_token())
        self._shm = ShmPool(self._shm_family, "d", shm_threshold)
        #: driver-side transport accounting per command kind:
        #: ``{kind: {"wire": bytes_on_the_pipe, "shm": bytes_via_shm}}``
        self._transport: dict[str, dict[str, int]] = {}
        self._tx = {"wire_tx": 0, "shm_tx": 0}

    @property
    def supports_shm(self) -> bool:
        return self._shm.enabled

    @property
    def shm_threshold(self) -> int | None:
        return self._shm_threshold

    def transport_bytes(self) -> dict[str, dict[str, int]]:
        return self._transport

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_started(self) -> None:
        if self._closed:
            raise RuntimeError("backend already closed")
        if self._started:
            return
        # start the resource tracker BEFORE forking, so every worker
        # inherits the one live tracker process: shared-memory
        # registrations then deduplicate in a single cache and the
        # owner's unlink clears them (a worker that lazily spawned its
        # own tracker would "clean up" the driver's live segments at
        # worker exit)
        try:
            from multiprocessing import resource_tracker
            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - non-POSIX fallback
            pass
        self._inboxes = [_Channel(self._ctx) for _ in range(self.p)]
        self._results = _Channel(self._ctx)
        self._workers = [
            self._ctx.Process(
                target=_worker_main,
                args=(rank, self.p, self._inboxes, self._results, os.getpid(),
                      self._shm_family, self._shm_threshold),
                daemon=True,
                name=f"repro-pe-{rank}",
            )
            for rank in range(self.p)
        ]
        for w in self._workers:
            w.start()
        self._started = True
        global _ATEXIT_REGISTERED
        if not _ATEXIT_REGISTERED:
            atexit.register(_close_leaked_pools)
            _ATEXIT_REGISTERED = True
        _LIVE_POOLS.add(self)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut the worker pool down; safe to call any number of times.

        Live resident chunks are salvaged into the driver-side store
        first, so a ``DistArray`` result stays readable after its
        machine's context exits.
        """
        if self._closed:
            return
        if self._started:
            try:
                self._salvage_resident()
            except Exception:  # pragma: no cover - dead-pool cleanup path
                pass
        self._closed = True
        _LIVE_POOLS.discard(self)
        if not self._started:
            self._shm.close()
            return
        try:
            self._seq += 1
            for rank in range(self.p):
                try:
                    self._inboxes[rank].put(("cmd", self._seq, ("stop",), None, ()))
                except OSError:  # pragma: no cover - worker already dead
                    pass
            for w in self._workers:
                w.join(timeout=5.0)
        finally:
            for w in self._workers:
                if w.is_alive():  # pragma: no cover - cleanup path
                    w.terminate()
                    w.join(timeout=1.0)
            for q in self._inboxes:
                q.close()
                q.cancel_join_thread()
            if self._results is not None:
                self._results.close()
                self._results.cancel_join_thread()
            # segment lifecycle backstop: unlink the driver pool's
            # segments and reap any a killed worker left behind, so no
            # shared memory outlives the backend
            self._shm.close()
            reap_segments(self._shm_family)

    def __del__(self):  # pragma: no cover - interpreter-shutdown safety
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Driver-side dispatch
    # ------------------------------------------------------------------
    def _drain_results(self) -> None:
        """Buffer early results while a command send waits on a full inbox
        (a worker blocked writing a large result would otherwise hold
        the driver and worker in a two-party cycle)."""
        while True:
            try:
                self._result_buffer.append(
                    self._results.get(timeout=0, pool=self._shm)
                )
            except queue_mod.Empty:
                return

    def _run(
        self, spec: tuple, locals_per_pe: Sequence, participants=None
    ) -> list:
        """Issue one command to the participating workers (default: all)
        and collect their results."""
        self._ensure_started()
        t0 = time.perf_counter()
        self._seq += 1
        seq = self._seq
        wire0 = self._tx["wire_tx"] + self._results.wire_rx
        shm0 = self._tx["shm_tx"] + self._results.shm_rx
        # Fail fast on unpicklable specs (e.g. a lambda reduction op):
        # Queue's feeder thread would otherwise drop the command silently
        # and the collective would time out with a bare queue.Empty.
        try:
            pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise TypeError(
                f"backend command {spec[0]!r} is not picklable (op/arguments "
                f"must cross a process boundary; use a named op like 'sum' "
                f"or a module-level callable): {exc}"
            ) from None
        # freed handles piggyback only on full-pool commands -- a partial-
        # participant command (p2p) would free the slots on two workers
        # and leak them on the rest
        if participants is None:
            free_ids = tuple(self._dead_refs)
            self._dead_refs.clear()
        else:
            free_ids = ()
        ranks = range(self.p) if participants is None else participants
        # broadcast command channel: one driver send regardless of p;
        # rank 0 fans the frame out along the binomial tree.  Chunk
        # uploads ("put") keep the direct path -- their per-PE locals
        # are the one arg-heavy payload, and tree forwarding would
        # re-serialize each rank's chunk once per edge on its root path
        # (~(log2 p)/2 times on average) for no latency benefit.
        if participants is None and spec[0] != "put":
            locals_map = {r: locals_per_pe[r] for r in range(self.p)}
            self._inboxes[0].put(
                ("bcmd", seq, spec, locals_map, free_ids),
                drain=self._drain_results, pool=self._shm, counters=self._tx,
            )
            self.driver_sends += 1
        else:
            for rank in ranks:
                self._inboxes[rank].put(
                    ("cmd", seq, spec, locals_per_pe[rank], free_ids),
                    drain=self._drain_results, pool=self._shm, counters=self._tx,
                )
                self.driver_sends += 1
        out: list = [None] * self.p
        failures: list[tuple[int, str]] = []
        # drain every participant's result even on error, so a failed
        # collective does not leave stale entries that poison the next one
        for _ in ranks:
            try:
                if self._result_buffer:
                    rank, rseq, value = self._result_buffer.pop(0)
                else:
                    rank, rseq, value = self._results.get(
                        timeout=_TIMEOUT, pool=self._shm
                    )
            except Exception:
                dead = [w.name for w in self._workers if not w.is_alive()]
                raise RuntimeError(
                    f"collective {spec[0]!r} timed out after {_TIMEOUT:.0f}s; "
                    + (
                        f"dead workers: {dead}"
                        if dead
                        else "likely an unpicklable payload (check for a "
                        "feeder-thread PicklingError traceback above)"
                    )
                ) from None
            if rseq != seq:  # pragma: no cover - protocol violation
                raise RuntimeError(
                    f"backend protocol error: expected seq {seq}, got {rseq}"
                )
            if isinstance(value, _WorkerError):
                failures.append((rank, value.message))
            else:
                out[rank] = value
        # every participant answered, so every shared block of this
        # command has been copied out -- the driver pool can recycle
        self._shm.release_round()
        tb = self._transport.setdefault(spec[0], {"wire": 0, "shm": 0})
        tb["wire"] += self._tx["wire_tx"] + self._results.wire_rx - wire0
        tb["shm"] += self._tx["shm_tx"] + self._results.shm_rx - shm0
        self.wall_time += time.perf_counter() - t0
        if failures:
            detail = "; ".join(f"worker {r} failed: {m}" for r, m in failures)
            raise RuntimeError(detail)
        return out

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def broadcast(self, value, root: int = 0) -> list:
        locals_per_pe = [value if i == root else None for i in range(self.p)]
        return self._run(("bcast", root), locals_per_pe)

    def reduce(self, values: Sequence, op, root: int = 0) -> list:
        return self._run(("reduce", op, root), values)

    def allreduce(self, values: Sequence, op) -> list:
        return self._run(("allreduce", op), values)

    def scan(self, values: Sequence, op) -> list:
        return self._run(("scan", op), values)

    def allreduce_exscan(self, values: Sequence, op, initial=0) -> tuple[list, list]:
        pairs = self._run(("allreduce_exscan", op, initial), values)
        totals = [t for t, _ in pairs]
        prefixes = [pre for _, pre in pairs]
        return totals, prefixes

    def reduce_allgather(self, values: Sequence, payloads: Sequence, op) -> tuple[list, list]:
        pairs = self._run(
            ("reduce_allgather", op), list(zip(values, payloads))
        )
        return [t for t, _ in pairs], [g for _, g in pairs]

    def gather(self, values: Sequence, root: int = 0) -> list:
        return self._run(("gather", root), values)

    def allgather(self, values: Sequence) -> list:
        return self._run(("allgather",), values)

    def scatter(self, pieces: Sequence, root: int = 0) -> list:
        locals_per_pe = [list(pieces) if i == root else None for i in range(self.p)]
        return self._run(("scatter", root), locals_per_pe)

    def alltoall(self, matrix: Sequence[Sequence]) -> list[list]:
        return self._run(("alltoall",), [list(row) for row in matrix])

    def p2p(self, src: int, dst: int, payload):
        if src == dst:
            return payload
        locals_per_pe = [payload if i == src else None for i in range(self.p)]
        out = self._run(("p2p", src, dst), locals_per_pe, participants=(src, dst))
        return out[dst]

    def map(self, fn: Callable[[int, object], object], items: Sequence) -> list:
        try:
            blob = self._blob(fn)
        except Exception:
            # closures/lambdas cannot cross the process boundary; degrade
            # gracefully to in-process application
            return [fn(i, x) for i, x in enumerate(items)]
        return self._run(("map", blob), items)

    # ------------------------------------------------------------------
    # Resident chunks
    # ------------------------------------------------------------------
    def _blob(self, fn) -> bytes:
        """Pickle a callback once per identity (hot loops reuse it).

        The cache pins the callable itself so its ``id`` cannot be
        recycled by the allocator while the entry is alive.
        """
        entry = self._fn_blobs.get(id(fn))
        if entry is None or entry[0] is not fn:
            if len(self._fn_blobs) > 256:  # unbounded-growth guard
                self._fn_blobs.clear()
            entry = (fn, pickle.dumps(fn, protocol=pickle.HIGHEST_PROTOCOL))
            self._fn_blobs[id(fn)] = entry
        return entry[1]

    def _new_ref(self) -> ChunkRef:
        ref_id = self._next_ref_id
        self._next_ref_id += 1
        self._live_ids.add(ref_id)
        return ChunkRef(ref_id, self.p, self._free_ref)

    def _free_ref(self, ref_id: int) -> None:
        # freeing piggybacks on the next command's envelope; nothing to
        # send eagerly (and the pool may already be closed)
        self._live_ids.discard(ref_id)
        self._store.pop(ref_id, None)
        self._dead_refs.append(ref_id)

    def _salvage_resident(self) -> None:
        """Pull live worker-resident chunks into the driver store so
        handles stay readable after the pool shuts down."""
        for ref_id in sorted(self._live_ids):
            if ref_id not in self._store:
                self._store[ref_id] = self._run(("get", ref_id), [None] * self.p)

    def put_chunks(self, chunks: Sequence) -> ChunkRef:
        if len(chunks) != self.p:
            raise ValueError(f"need one chunk per PE, got {len(chunks)} for p={self.p}")
        ref = self._new_ref()
        self._run(("put", ref.id), list(chunks))
        # keep an alias to the driver-born objects (read-only convention):
        # get_chunks then never re-fetches them and close() never pays to
        # salvage data the driver already holds
        self._store[ref.id] = list(chunks)
        return ref

    def get_chunks(self, ref: ChunkRef) -> list:
        if ref.id in self._store:  # driver-born or salvaged at close
            return self._store[ref.id]
        return self._run(("get", ref.id), [None] * self.p)

    def map_resident(
        self,
        fn: Callable,
        refs: Sequence[ChunkRef],
        n_out: int = 0,
        args: Sequence[tuple] | None = None,
        collect: tuple | None = None,
    ) -> tuple[list[ChunkRef], list, list | None]:
        try:
            blob = self._blob(fn)
        except Exception:
            # driver-side fallback: fetch, apply, re-pin.  Slow (the
            # chunks make a round trip) but correct, and only hit by
            # closures that cannot cross the process boundary.
            chunk_lists = [self.get_chunks(r) for r in refs]
            outs, values = _apply_resident(self.p, fn, chunk_lists, n_out, args)
            out_refs = [self.put_chunks(chunks) for chunks in outs]
            return out_refs, values, _collect_values(values, collect, self.p)
        out_refs = [self._new_ref() for _ in range(n_out)]
        spec = ("mapres", blob, tuple(r.id for r in refs),
                tuple(r.id for r in out_refs), collect)
        locals_per_pe = list(args) if args is not None else [None] * self.p
        out = self._run(spec, locals_per_pe)
        if collect is None:
            return out_refs, out, None
        return out_refs, [v for v, _ in out], [c for _, c in out]

    def run_spmd(
        self,
        fn: Callable,
        refs: Sequence[ChunkRef],
        n_out: int = 0,
        args: Sequence[tuple] | None = None,
    ) -> tuple[list[ChunkRef], list]:
        try:
            blob = self._blob(fn)
        except Exception:
            chunk_lists = [self.get_chunks(r) for r in refs]
            outs, values = _run_spmd_inprocess(self.p, fn, chunk_lists, n_out, args)
            out_refs = [self.put_chunks(chunks) for chunks in outs]
            return out_refs, values
        out_refs = [self._new_ref() for _ in range(n_out)]
        spec = ("spmd", blob, tuple(r.id for r in refs),
                tuple(r.id for r in out_refs))
        locals_per_pe = list(args) if args is not None else [None] * self.p
        values = self._run(spec, locals_per_pe)
        return out_refs, values

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def worker_message_counts(self) -> list[int]:
        if not self._started or self._closed:
            return [0] * self.p
        stats = self._run(("stats",), [None] * self.p)
        return [s["msgs"] for s in stats]

    def command_fanout_counts(self) -> list[int]:
        """Per-worker count of forwarded broadcast-command frames.

        Every full-pool command costs exactly ``p - 1`` forwards in total
        (the binomial-tree edges), paid by the workers instead of the
        driver; the driver's own channel writes are
        :attr:`driver_sends`.  Note the ``stats`` round trip used to read
        these counters is itself a broadcast command, so a delta between
        two reads includes the forwards of one stats command.
        """
        if not self._started or self._closed:
            return [0] * self.p
        stats = self._run(("stats",), [None] * self.p)
        return [s["cmd_fwd"] for s in stats]

    def worker_transport_counts(self) -> list[dict[str, int]]:
        """Per-worker cumulative transport bytes: ``wire_tx`` (pipe
        frames written, peer messages + forwarded commands + results)
        and ``shm_tx`` (payload bytes shared out of that worker's shm
        pool).  Complements the driver-side :meth:`transport_bytes`."""
        if not self._started or self._closed:
            return [{"wire_tx": 0, "shm_tx": 0} for _ in range(self.p)]
        stats = self._run(("stats",), [None] * self.p)
        return [{"wire_tx": s["wire_tx"], "shm_tx": s["shm_tx"]} for s in stats]
