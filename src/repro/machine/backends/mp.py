"""Real shared-memory execution: one worker process per PE.

Every PE of the machine is backed by a long-lived OS process; a
collective ships each PE's contribution to its worker, the workers
exchange the payloads among themselves (pickled messages through
per-worker inbox queues), and each worker computes its own result and
returns it to the driver.  The combination orders replicate
:class:`~repro.machine.backends.sim.SimBackend` exactly -- reductions
gather all contributions and combine them in binomial-tree order, scans
combine in rank order -- so every value collective (and with it all the
package's pipelines) is bit-identical to the simulated run, including
floating-point reductions.  The one carve-out is
:meth:`Machine.aggregate_exchange` with *float* values: the simulated
hypercube merges on the way while this backend merges delivered buckets
in rank order, a different float-addition association (last-ulp
differences).  Integer counts -- what every pipeline in this package
ships through the DHT -- are association-free and stay bit-identical.

Wire protocol
-------------
The driver sends every worker one command per collective, tagged with a
monotonically increasing sequence number; workers exchange peer messages
tagged with the same number and stash anything that arrives early, so
fast workers can run ahead without confusing slow ones.  Symmetric
collectives exchange directly (every worker messages every peer, O(p^2)
messages), rooted collectives and point-to-point sends only touch the
participating workers; this is the right trade-off for the
shared-memory PE counts this backend targets, and tree schedules for
larger ``p`` are a backend evolution, not an algorithm change.

Caveats
-------
* Payloads and callable reduction ops must be picklable.  The named ops
  (``"sum"``, ``"min"``, ``"max"``) always are; ``map`` falls back to
  in-process execution when its function cannot be pickled.
* Per-PE *local* algorithm work still executes in the driver (the
  algorithms are written driver-side SPMD); what runs in parallel is the
  collective data plane plus :meth:`map`.  Wall-clock therefore measures
  real IPC + parallel combine cost, while the machine's modeled time
  remains the analytic alpha-beta prediction.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_mod
import time
from collections import deque
from typing import Callable, Sequence

from ..collectives import inclusive_scan, tree_reduce_order
from .base import Backend

__all__ = ["MultiprocessingBackend"]

#: seconds to wait for a worker before declaring the pool dead
_TIMEOUT = 120.0


def _worker_sendrecv(rank, seq, sends, expect_from, inboxes, backlog, stash):
    """Send ``sends[j]`` to each peer ``j`` and collect one payload from
    every peer in ``expect_from`` for this ``seq``.  Returns a src->payload
    dict.  Sparse by design: rooted collectives involve only the root's
    fan-in/fan-out instead of a p^2 all-exchange."""
    for j, payload in sends.items():
        inboxes[j].put(("msg", seq, rank, payload))
    recv: dict = {}
    pending = set(expect_from)
    for src in list(pending):
        if (seq, src) in stash:
            recv[src] = stash.pop((seq, src))
            pending.discard(src)
    while pending:
        item = inboxes[rank].get(timeout=_TIMEOUT)
        if item[0] == "cmd":
            backlog.append(item)
            continue
        _, mseq, src, payload = item
        if mseq == seq and src in pending:
            recv[src] = payload
            pending.discard(src)
        else:
            stash[(mseq, src)] = payload
    return recv


def _worker_exchange(rank, p, seq, row, inboxes, backlog, stash):
    """Full exchange: send ``row[j]`` to every peer and collect one
    payload from each.  Returns the rank-ordered received list
    (``row[rank]`` fills the local slot)."""
    sends = {j: row[j] for j in range(p) if j != rank}
    recv = _worker_sendrecv(
        rank, seq, sends, [j for j in range(p) if j != rank], inboxes, backlog, stash
    )
    recv[rank] = row[rank]
    return [recv[j] for j in range(p)]


def _worker_main(rank, p, inboxes, results, parent_pid):
    """Command loop of one PE worker (module-level for spawn support)."""
    backlog: deque = deque()
    stash: dict = {}
    while True:
        if backlog:
            item = backlog.popleft()
        else:
            try:
                item = inboxes[rank].get(timeout=5.0)
            except queue_mod.Empty:
                # daemon workers survive a SIGKILL'd driver; bail out
                # once the parent is gone instead of blocking forever
                if os.getppid() != parent_pid:
                    return
                continue
        if item[0] != "cmd":
            _, mseq, src, payload = item
            stash[(mseq, src)] = payload
            continue
        _, seq, spec, local = item
        op_name = spec[0]
        if op_name == "stop":
            results.put((rank, seq, None))
            return
        try:
            result = _execute(rank, p, seq, spec, local, inboxes, backlog, stash)
            results.put((rank, seq, result))
        except Exception as exc:  # surface worker failures to the driver
            results.put((rank, seq, _WorkerError(repr(exc))))


class _WorkerError:
    """Marker wrapping an exception that happened inside a worker."""

    def __init__(self, message: str):
        self.message = message


def _execute(rank, p, seq, spec, local, inboxes, backlog, stash):
    """Run one collective on this worker; returns this PE's result."""
    kind = spec[0]

    if kind == "map":
        fn = pickle.loads(spec[1])
        return fn(rank, local)

    exchange = lambda row: _worker_exchange(
        rank, p, seq, row, inboxes, backlog, stash
    )
    sendrecv = lambda sends, expect: _worker_sendrecv(
        rank, seq, sends, expect, inboxes, backlog, stash
    )
    others = [j for j in range(p) if j != rank]

    if kind == "bcast":
        root = spec[1]
        if rank == root:
            sendrecv({j: local for j in others}, ())
            return local
        return sendrecv({}, (root,))[root]
    if kind == "reduce":
        op, root = spec[1], spec[2]
        if rank != root:
            sendrecv({root: local}, ())
            return None
        recv = sendrecv({}, others)
        recv[rank] = local
        return tree_reduce_order([recv[j] for j in range(p)], op)
    if kind == "allreduce":
        recv = exchange([local] * p)
        return tree_reduce_order(recv, spec[1])
    if kind == "scan":
        recv = exchange([local] * p)
        return inclusive_scan(recv, spec[1])[rank]
    if kind == "allreduce_exscan":
        op, initial = spec[1], spec[2]
        recv = exchange([local] * p)
        total = tree_reduce_order(recv, op)
        prefix = initial if rank == 0 else inclusive_scan(recv, op)[rank - 1]
        return total, prefix
    if kind == "gather":
        root = spec[1]
        if rank != root:
            sendrecv({root: local}, ())
            return None
        recv = sendrecv({}, others)
        recv[rank] = local
        return [recv[j] for j in range(p)]
    if kind == "allgather":
        return exchange([local] * p)
    if kind == "scatter":
        root = spec[1]
        if rank == root:
            # ``local`` is the full pieces list
            sendrecv({j: local[j] for j in others}, ())
            return local[rank]
        return sendrecv({}, (root,))[root]
    if kind == "alltoall":
        return exchange(list(local))
    if kind == "p2p":
        # pair operation: only src and dst receive this command, so the
        # rest of the pool keeps working undisturbed
        src, dst = spec[1], spec[2]
        if rank == src:
            sendrecv({dst: local}, ())
            return None
        return sendrecv({}, (src,))[src]
    raise ValueError(f"unknown backend command {kind!r}")


class MultiprocessingBackend(Backend):
    """One OS process per PE; collectives move real pickled messages."""

    name = "mp"
    is_real = True

    def __init__(self, p: int, *, start_method: str | None = None):
        super().__init__(p)
        self._ctx = multiprocessing.get_context(start_method)
        self._seq = 0
        self._workers: list = []
        self._inboxes: list = []
        self._results = None
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_started(self) -> None:
        if self._closed:
            raise RuntimeError("backend already closed")
        if self._started:
            return
        self._inboxes = [self._ctx.Queue() for _ in range(self.p)]
        self._results = self._ctx.Queue()
        self._workers = [
            self._ctx.Process(
                target=_worker_main,
                args=(rank, self.p, self._inboxes, self._results, os.getpid()),
                daemon=True,
                name=f"repro-pe-{rank}",
            )
            for rank in range(self.p)
        ]
        for w in self._workers:
            w.start()
        self._started = True

    def close(self) -> None:
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        try:
            self._seq += 1
            for rank in range(self.p):
                self._inboxes[rank].put(("cmd", self._seq, ("stop",), None))
            for w in self._workers:
                w.join(timeout=5.0)
        finally:
            for w in self._workers:
                if w.is_alive():  # pragma: no cover - cleanup path
                    w.terminate()
            for q in self._inboxes:
                q.close()
                q.cancel_join_thread()
            if self._results is not None:
                self._results.close()
                self._results.cancel_join_thread()

    def __del__(self):  # pragma: no cover - interpreter-shutdown safety
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Driver-side dispatch
    # ------------------------------------------------------------------
    def _run(
        self, spec: tuple, locals_per_pe: Sequence, participants=None
    ) -> list:
        """Issue one command to the participating workers (default: all)
        and collect their results."""
        self._ensure_started()
        t0 = time.perf_counter()
        self._seq += 1
        seq = self._seq
        # Fail fast on unpicklable specs (e.g. a lambda reduction op):
        # Queue's feeder thread would otherwise drop the command silently
        # and the collective would time out with a bare queue.Empty.
        try:
            pickle.dumps(spec)
        except Exception as exc:
            raise TypeError(
                f"backend command {spec[0]!r} is not picklable (op/arguments "
                f"must cross a process boundary; use a named op like 'sum' "
                f"or a module-level callable): {exc}"
            ) from None
        ranks = range(self.p) if participants is None else participants
        for rank in ranks:
            self._inboxes[rank].put(("cmd", seq, spec, locals_per_pe[rank]))
        out: list = [None] * self.p
        failures: list[tuple[int, str]] = []
        # drain every participant's result even on error, so a failed
        # collective does not leave stale entries that poison the next one
        for _ in ranks:
            try:
                rank, rseq, value = self._results.get(timeout=_TIMEOUT)
            except Exception:
                dead = [w.name for w in self._workers if not w.is_alive()]
                raise RuntimeError(
                    f"collective {spec[0]!r} timed out after {_TIMEOUT:.0f}s; "
                    + (
                        f"dead workers: {dead}"
                        if dead
                        else "likely an unpicklable payload (check for a "
                        "feeder-thread PicklingError traceback above)"
                    )
                ) from None
            if rseq != seq:  # pragma: no cover - protocol violation
                raise RuntimeError(
                    f"backend protocol error: expected seq {seq}, got {rseq}"
                )
            if isinstance(value, _WorkerError):
                failures.append((rank, value.message))
            else:
                out[rank] = value
        self.wall_time += time.perf_counter() - t0
        if failures:
            detail = "; ".join(f"worker {r} failed: {m}" for r, m in failures)
            raise RuntimeError(detail)
        return out

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def broadcast(self, value, root: int = 0) -> list:
        locals_per_pe = [value if i == root else None for i in range(self.p)]
        return self._run(("bcast", root), locals_per_pe)

    def reduce(self, values: Sequence, op, root: int = 0) -> list:
        return self._run(("reduce", op, root), values)

    def allreduce(self, values: Sequence, op) -> list:
        return self._run(("allreduce", op), values)

    def scan(self, values: Sequence, op) -> list:
        return self._run(("scan", op), values)

    def allreduce_exscan(self, values: Sequence, op, initial=0) -> tuple[list, list]:
        pairs = self._run(("allreduce_exscan", op, initial), values)
        totals = [t for t, _ in pairs]
        prefixes = [pre for _, pre in pairs]
        return totals, prefixes

    def gather(self, values: Sequence, root: int = 0) -> list:
        return self._run(("gather", root), values)

    def allgather(self, values: Sequence) -> list:
        return self._run(("allgather",), values)

    def scatter(self, pieces: Sequence, root: int = 0) -> list:
        locals_per_pe = [list(pieces) if i == root else None for i in range(self.p)]
        return self._run(("scatter", root), locals_per_pe)

    def alltoall(self, matrix: Sequence[Sequence]) -> list[list]:
        return self._run(("alltoall",), [list(row) for row in matrix])

    def p2p(self, src: int, dst: int, payload):
        if src == dst:
            return payload
        locals_per_pe = [payload if i == src else None for i in range(self.p)]
        out = self._run(("p2p", src, dst), locals_per_pe, participants=(src, dst))
        return out[dst]

    def map(self, fn: Callable[[int, object], object], items: Sequence) -> list:
        try:
            blob = pickle.dumps(fn)
        except Exception:
            # closures/lambdas cannot cross the process boundary; degrade
            # gracefully to in-process application
            return [fn(i, x) for i, x in enumerate(items)]
        return self._run(("map", blob), items)
