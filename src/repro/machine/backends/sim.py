"""The in-process simulated data plane (the default backend).

Collectives compute their results directly in the driver process with
deterministic combination orders:

* reductions combine in binomial-tree order
  (:func:`repro.machine.collectives.tree_reduce_order`) so that
  floating-point rounding is reproducible and matches what the modeled
  tree schedule would produce,
* prefix combines run in linear rank order
  (:func:`repro.machine.collectives.inclusive_scan`).

Because nothing leaves the process, results may alias the inputs
(``broadcast`` returns ``[value] * p``); callers must treat returned
objects as read-only, exactly as :mod:`repro.machine.comm` documents.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..collectives import inclusive_scan, tree_reduce_order
from .base import Backend

__all__ = ["SimBackend"]


class SimBackend(Backend):
    """Zero-copy in-process execution; all time is modeled, not real."""

    name = "sim"
    is_real = False

    # ------------------------------------------------------------------
    def broadcast(self, value, root: int = 0) -> list:
        return [value] * self.p

    def reduce(self, values: Sequence, op, root: int = 0) -> list:
        out: list = [None] * self.p
        out[root] = tree_reduce_order(values, op)
        return out

    def allreduce(self, values: Sequence, op) -> list:
        return [tree_reduce_order(values, op)] * self.p

    def scan(self, values: Sequence, op) -> list:
        return inclusive_scan(values, op)

    def allreduce_exscan(self, values: Sequence, op, initial=0) -> tuple[list, list]:
        inc = inclusive_scan(values, op)
        totals = [tree_reduce_order(values, op)] * self.p
        return totals, [initial] + inc[:-1]

    def gather(self, values: Sequence, root: int = 0) -> list:
        out: list = [None] * self.p
        out[root] = list(values)
        return out

    def allgather(self, values: Sequence) -> list:
        result = list(values)
        return [result] * self.p

    def scatter(self, pieces: Sequence, root: int = 0) -> list:
        return list(pieces)

    def alltoall(self, matrix: Sequence[Sequence]) -> list[list]:
        p = self.p
        return [[matrix[i][j] for i in range(p)] for j in range(p)]

    def p2p(self, src: int, dst: int, payload):
        return payload

    def map(self, fn: Callable[[int, object], object], items: Sequence) -> list:
        return [fn(i, x) for i, x in enumerate(items)]
