"""TCP socket launcher: the worker runtime over a network transport.

Runs the exact same worker runtime as the ``mp`` backend
(:mod:`repro.machine.backends.runtime`) -- same command loop, same
binomial/Bruck exchange schedules, same broadcast-command fan-out, same
resident chunk store -- but over length-framed stream sockets
(:class:`~repro.machine.backends.transport.SocketChannel`) instead of
pipes, so workers no longer have to share a host with the driver.
Results and modeled costs are bit-identical to ``sim`` and ``mp``
(identical combination orders, identical charge replay).

Topology
--------
* the driver binds one listening socket and every worker *registers*
  by connecting to it; that connection stays the worker's command /
  result channel for the pool's lifetime;
* each worker also binds a small mesh listener and reports its port in
  the registration hello; once all ``p`` workers registered, the
  driver broadcasts the rank -> address map and the workers build a
  full mesh (rank ``i`` connects to every ``j < i`` and accepts every
  ``j > i`` -- the rank ordering makes mesh construction
  deadlock-free).  One TCP connection per unordered pair, used
  full-duplex, carries the peer exchanges;
* a ready barrier (each worker acks the completed mesh) gates the
  first command.

Placement
---------
Workers are placed by a per-rank host list: the ``hosts=`` kwarg or the
``REPRO_TCP_HOSTS`` environment variable (comma-separated, cycled to
cover all ``p`` ranks; default: loopback).  Loopback entries
(``127.0.0.1`` / ``localhost`` / ``::1``) are forked as local daemon
processes -- the zero-config default, and what CI exercises.  Any other
entry is *your* host: the driver prints the exact worker command ::

    python -m repro.machine.backends.tcp <driver-host>:<port>

and waits (``connect_timeout`` seconds) for that rank to register from
the remote machine.  ``bind=`` / ``REPRO_TCP_BIND`` overrides the
driver's listening interface (it defaults to loopback, or ``0.0.0.0``
when any remote host is listed, advertised as ``REPRO_TCP_ADVERTISE``
or the machine's hostname).

Capabilities
------------
``supports_oob_pickle=True`` -- frames are protocol-5 pickles with
out-of-band buffers, so array payloads are never copied into the
pickle stream; ``supports_shm=False`` -- there is no shared-memory
lane between hosts, every buffer rides the socket inline (the
``transport`` experiment of ``benchmarks/bench_backend_scaling.py``
records the resulting wire-byte difference against ``mp``).
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import time
from typing import Callable

from .runtime import RuntimeBackend, WorkerLinks, worker_loop
from .transport import MultiInbox, SocketChannel, write_views

__all__ = ["TcpBackend", "worker_main"]

#: host-list entries forked locally instead of awaited from outside
_LOOPBACK = {"127.0.0.1", "localhost", "::1", ""}

#: seconds to wait for a single connection / hello / mesh hop
_DEFAULT_CONNECT_TIMEOUT = 120.0

#: overall deadline for the whole pool to register (stray connections
#: reset a per-accept timeout; this one they cannot)
_DEFAULT_REGISTER_TIMEOUT = 60.0


def _env_hosts() -> list[str] | None:
    raw = os.environ.get("REPRO_TCP_HOSTS")
    if not raw:
        return None
    return [h.strip() for h in raw.split(",") if h.strip()]


def _resolve_hosts(p: int, hosts) -> list[str]:
    """One host per rank: kwarg > ``REPRO_TCP_HOSTS`` > loopback; a
    shorter list is cycled across the ranks (round-robin placement)."""
    if hosts is None:
        hosts = _env_hosts()
    if hosts is None:
        return ["127.0.0.1"] * p
    if isinstance(hosts, str):
        hosts = [h.strip() for h in hosts.split(",") if h.strip()]
    hosts = list(hosts)
    if not hosts:
        return ["127.0.0.1"] * p
    return [hosts[i % len(hosts)] for i in range(p)]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

class _SocketLinks(WorkerLinks):
    """Socket binding of one worker: the registration connection is the
    driver channel (commands in, results out), one mesh socket per peer
    carries the exchanges, and a :class:`MultiInbox` drains them all."""

    def __init__(self, rank, p, driver_chan, peer_chans, parent_pid,
                 faults=None):
        super().__init__(rank, p, pool=None, parent_pid=parent_pid,
                         faults=faults)
        self._driver = driver_chan
        self._peers = peer_chans
        self._inbox = MultiInbox()
        self._inbox.add(driver_chan, primary=True)
        for chan in peer_chans.values():
            self._inbox.add(chan)

    def send(self, dst: int, item, drain: Callable | None = None) -> None:
        self._peers[dst].put(item, drain=drain, counters=self.counters)

    def send_result(self, item, drain: Callable | None = None,
                    pool: bool = True) -> None:
        self._driver.put(item, drain=drain, counters=self.counters)

    def recv(self, timeout: float | None = None):
        return self._inbox.get(timeout=timeout)

    def close(self) -> None:
        self._inbox.close()

    # -- fault-injection hooks -----------------------------------------
    def sever(self, peer: int) -> None:
        # hard-cut the pair socket: the peer's next read gets EOF and
        # its MultiInbox drops the channel, so the next exchange with
        # this rank times out into the driver's "hung" detection
        self._peers[peer].shutdown()

    def send_result_truncated(self, item) -> None:
        from ..faults import truncated_frame_bytes

        raw = truncated_frame_bytes(item)
        write_views(self._driver._sock.fileno(), [memoryview(raw)])


def worker_main(driver_addr: tuple[str, int], rank: int | None = None,
                parent_pid: int | None = None,
                timeout: float = _DEFAULT_CONNECT_TIMEOUT,
                mesh_bind: str = "") -> None:
    """Register with a driver, build the peer mesh, run the command loop.

    The entry point of every tcp worker -- forked loopback workers pass
    their preassigned ``rank``; externally launched workers (see
    ``python -m repro.machine.backends.tcp``) pass ``None`` and the
    driver assigns one.  ``mesh_bind`` narrows the mesh listener's
    interface (all-loopback pools fork their workers with
    ``"127.0.0.1"`` so nothing listens on outside interfaces).
    """
    # mesh listener first: its port rides the registration hello, so by
    # the time any peer learns the address the socket is accepting
    mesh_listener = socket.create_server((mesh_bind, 0), backlog=16)
    mesh_listener.settimeout(timeout)
    mesh_port = mesh_listener.getsockname()[1]
    driver = SocketChannel(socket.create_connection(driver_addr, timeout=timeout))
    driver.put(("hello", rank, mesh_port))
    # config is ("config", rank, p, peers[, faults[, kernels]]); the
    # trailing slices are optional so externally launched workers of any
    # vintage can join
    tag, rank, p, peers, *rest = driver.get(timeout=timeout)
    if tag != "config":
        raise RuntimeError(f"expected config frame, got {tag!r}")
    faults = rest[0] if rest else None
    kernels = rest[1] if len(rest) > 1 else None
    if kernels is not None:
        from ...kernels import set_mode

        set_mode(kernels)
    peer_chans: dict[int, SocketChannel] = {}
    try:
        # rank i connects to every lower rank and accepts every higher
        # one: rank order makes the mesh construction deadlock-free
        for j in range(rank):
            chan = SocketChannel(socket.create_connection(peers[j], timeout=timeout))
            chan.put(("mesh", rank))
            peer_chans[j] = chan
        for _ in range(p - 1 - rank):
            conn, _ = mesh_listener.accept()
            chan = SocketChannel(conn)
            mtag, j = chan.get(timeout=timeout)
            if mtag != "mesh":
                raise RuntimeError(f"expected mesh hello, got {mtag!r}")
            peer_chans[j] = chan
    finally:
        mesh_listener.close()
    driver.put(("ready",))
    worker_loop(_SocketLinks(rank, p, driver, peer_chans, parent_pid,
                             faults=faults))


def _local_worker_main(rank, p, driver_addr, parent_pid, mesh_bind=""):
    """Fork target for loopback-placed ranks (module-level for spawn)."""
    worker_main(driver_addr, rank=rank, parent_pid=parent_pid,
                mesh_bind=mesh_bind)


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------

class TcpBackend(RuntimeBackend):
    """Workers behind length-framed TCP sockets; loopback by default,
    other hosts via ``hosts=`` / ``REPRO_TCP_HOSTS``."""

    name = "tcp"
    is_real = True
    supports_oob_pickle = True
    supports_shm = False

    def __init__(
        self,
        p: int,
        *,
        hosts: list[str] | str | None = None,
        bind: str | None = None,
        connect_timeout: float = _DEFAULT_CONNECT_TIMEOUT,
        register_timeout: float | None = None,
        start_method: str | None = None,
        verify: bool = False,
        pipeline_depth: int = 8,
        command_timeout: float | None = None,
        faults=None,
        journal: bool = False,
        kernels: str | None = None,
    ):
        super().__init__(p, verify=verify, pipeline_depth=pipeline_depth,
                         command_timeout=command_timeout, faults=faults,
                         journal=journal, kernels=kernels)
        self._hosts = _resolve_hosts(p, hosts)
        self._bind = bind or os.environ.get("REPRO_TCP_BIND")
        self._connect_timeout = connect_timeout
        # all-loopback pools register in milliseconds; a remote pool
        # needs time for the operator to launch workers by hand
        if register_timeout is None:
            register_timeout = (
                _DEFAULT_REGISTER_TIMEOUT
                if all(h in _LOOPBACK for h in self._hosts)
                else connect_timeout
            )
        self._register_timeout = float(register_timeout)
        self._ctx = multiprocessing.get_context(start_method)
        self._workers: list = []
        self._local_ranks: list[int] = []
        #: registration-channel fd of each rank (dropped fd == dead rank)
        self._chan_fds: dict[int, int] = {}
        self._listener: socket.socket | None = None

    @property
    def hosts(self) -> list[str]:
        return list(self._hosts)

    # ------------------------------------------------------------------
    # Pool lifecycle (RuntimeBackend hooks)
    # ------------------------------------------------------------------
    def _start_pool(self) -> None:
        chans: dict[int, SocketChannel] = {}
        try:
            self._register_pool(chans)
        except BaseException:
            # a half-built pool (listener open, some workers forked,
            # some channels registered) must not leak on failure
            self._abort_start(chans)
            raise

    def _register_pool(self, chans: dict[int, "SocketChannel"]) -> None:
        local = [h in _LOOPBACK for h in self._hosts]
        bind_host = self._bind or ("127.0.0.1" if all(local) else "0.0.0.0")
        self._listener = socket.create_server((bind_host, 0), backlog=self.p + 8)
        # overall registration deadline: per-accept timeouts alone would
        # let a stream of stray connections keep a half-registered pool
        # waiting forever
        reg_deadline = time.monotonic() + self._register_timeout
        port = self._listener.getsockname()[1]
        remote_ranks = sorted(r for r in range(self.p) if not local[r])
        advertise = (os.environ.get("REPRO_TCP_ADVERTISE")
                     or socket.gethostname())
        # loopback ranks: forked daemons that connect straight back (to
        # the bound interface when it is a concrete address -- a driver
        # bound to eth0 only is not reachable via 127.0.0.1); their mesh
        # listeners stay on loopback when the whole pool is local, so a
        # default pool opens nothing on outside interfaces
        worker_connect = ("127.0.0.1" if bind_host in ("", "0.0.0.0", "::")
                          else bind_host)
        mesh_bind = "127.0.0.1" if all(local) else ""
        self._local_ranks = [rank for rank in range(self.p) if local[rank]]
        self._workers = [
            self._ctx.Process(
                target=_local_worker_main,
                args=(rank, self.p, (worker_connect, port), os.getpid(),
                      mesh_bind),
                daemon=True,
                name=f"repro-tcp-{rank}",
            )
            for rank in range(self.p)
            if local[rank]
        ]
        for w in self._workers:
            w.start()
        # remote ranks: operator-launched; print the exact command
        if remote_ranks:
            import sys
            for rank in remote_ranks:
                print(
                    f"[repro.tcp] waiting for rank {rank}: run on "
                    f"{self._hosts[rank]!r}:\n"
                    f"    python -m repro.machine.backends.tcp "
                    f"{advertise}:{port}",
                    file=sys.stderr,
                )
        # registration: every worker connects and says hello
        mesh_addr: dict[int, tuple[str, int]] = {}
        unclaimed = list(remote_ranks)
        while len(chans) < self.p:
            remaining = reg_deadline - time.monotonic()
            if remaining <= 0:
                missing = sorted(set(range(self.p)) - set(chans))
                raise RuntimeError(
                    f"tcp backend: ranks {missing} never registered within "
                    f"{self._register_timeout:.0f}s (remote workers must be "
                    f"launched with `python -m repro.machine.backends.tcp "
                    f"HOST:PORT`)"
                ) from None
            self._listener.settimeout(remaining)
            try:
                conn, peer = self._listener.accept()
            except socket.timeout:
                continue  # the deadline check above raises
            chan = SocketChannel(conn)
            try:
                tag, want, mesh_port = chan.get(
                    timeout=min(max(reg_deadline - time.monotonic(), 0.1),
                                10.0)
                )
                if tag != "hello":
                    raise ValueError(f"expected hello frame, got {tag!r}")
            except Exception:
                chan.close()  # stray or garbage connection: ignore it
                continue
            if want is None:
                if not unclaimed:  # volunteer with no remote slot open
                    chan.close()
                    continue
                rank = unclaimed.pop(0)
            else:
                if not (0 <= want < self.p) or want in chans:
                    chan.close()  # bogus or duplicate rank claim
                    continue
                rank = want
            host = peer[0]
            if remote_ranks and host in ("127.0.0.1", "::1"):
                # a loopback-registered worker runs on the driver host;
                # remote peers must reach its mesh listener through the
                # driver's advertised address, not their own loopback
                host = advertise
            chans[rank] = chan
            mesh_addr[rank] = (host, mesh_port)
        # config fan-out + ready barrier (gates the first command: no
        # command may race ahead of a still-forming mesh)
        peers = [mesh_addr[j] for j in range(self.p)]
        for rank in range(self.p):
            chans[rank].put(
                ("config", rank, self.p, peers,
                 self.faults.for_rank(rank) if self.faults else None,
                 self.kernels_mode)
            )
        for rank in range(self.p):
            ack = chans[rank].get(timeout=self._connect_timeout)
            if ack != ("ready",):  # pragma: no cover - protocol violation
                raise RuntimeError(f"rank {rank}: expected ready, got {ack!r}")
        self._inboxes = [chans[r] for r in range(self.p)]
        self._chan_fds = {r: chans[r].fileno() for r in range(self.p)}
        results = MultiInbox()
        for rank in range(self.p):
            results.add(chans[rank])
        self._results = results

    def _abort_start(self, chans: dict[int, "SocketChannel"]) -> None:
        """Release whatever a failed ``_start_pool`` half-built."""
        for w in self._workers:
            if w.is_alive():
                w.terminate()
                w.join(timeout=1.0)
        self._workers = []
        for chan in chans.values():
            chan.close()
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        self._inboxes = []
        self._results = None

    def _teardown_idle(self) -> None:
        if self._listener is not None:  # pragma: no cover - defensive
            self._listener.close()
            self._listener = None

    def _join_workers(self) -> None:
        for w in self._workers:
            w.join(timeout=5.0)

    def _teardown(self) -> None:
        for w in self._workers:
            if w.is_alive():  # pragma: no cover - cleanup path
                w.terminate()
                w.join(timeout=1.0)
        if self._results is not None:
            self._results.close()  # closes every registration channel
        if self._listener is not None:
            self._listener.close()

    def _dead_workers(self) -> list[str]:
        return [w.name for w in self._workers if not w.is_alive()]

    def _dead_ranks(self) -> list[int]:
        dead = {
            self._local_ranks[i]
            for i, w in enumerate(self._workers)
            if not w.is_alive()
        }
        # a remote (or already-reaped) worker's death shows as its
        # registration channel dropping out of the results MultiInbox
        if self._results is not None and self._chan_fds:
            live = set(self._results._chans)
            dead.update(r for r, fd in self._chan_fds.items()
                        if fd not in live)
        return sorted(dead)

    def _reset_for_restart(self) -> None:
        super()._reset_for_restart()
        self._workers = []
        self._local_ranks = []
        self._chan_fds = {}
        self._listener = None


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.machine.backends.tcp HOST:PORT`` -- join a
    waiting :class:`TcpBackend` driver as one externally launched
    worker (rank assigned by the driver); returns when the pool stops."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.machine.backends.tcp",
        description="join a repro tcp-backend driver as one worker",
    )
    parser.add_argument("driver", help="driver address as HOST:PORT "
                        "(printed by the waiting driver)")
    parser.add_argument("--timeout", type=float,
                        default=_DEFAULT_CONNECT_TIMEOUT,
                        help="seconds to wait for registration + mesh")
    args = parser.parse_args(argv)
    host, _, port = args.driver.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"expected HOST:PORT, got {args.driver!r}")
    worker_main((host, int(port)), timeout=args.timeout)
    return 0


if __name__ == "__main__":  # pragma: no cover - external worker entry
    raise SystemExit(main())
