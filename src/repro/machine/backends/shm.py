"""Shared-memory segment pool: the bulk-payload lane of the mp backend.

The mp transport frames every message as a protocol-5 pickle whose
out-of-band buffers are split into two lanes (see
:mod:`repro.machine.backends.transport`):

* buffers *below* the size threshold ride the pipe inline, written by
  scatter-gather ``os.writev`` with no intermediate concatenation;
* buffers *at or above* the threshold are copied once into a block of a
  :class:`multiprocessing.shared_memory.SharedMemory` segment and only a
  ``(name, offset, nbytes)`` descriptor crosses the pipe.  The receiver
  copies the block out while decoding the frame, so by the time a
  message is visible to any consumer its payload is private memory and
  the block can be recycled.

Lifecycle
---------
Every process owns one :class:`ShmPool`.  Segments the pool *created*
are its own: they are bump-allocated in rounds (one round per command
seq, tagged via :meth:`ShmPool.begin_round`) and recycled wholesale at
safe points (:meth:`ShmPool.release_through`): the runtime's *ack
frontier* -- the highest seq whose results the driver fully collected,
piggybacked on every command envelope -- proves every block of rounds
up to it was copied out by its receiver.  Under pipelined issue several
rounds may be outstanding at once; the pool recycles only when nothing
newer than the frontier has allocated, so footprint stays bounded by
the pipeline depth.  Segments of *other* pools are attached lazily and cached
(:meth:`ShmPool.materialize`), so a recycled segment is never re-mmapped.

``close()`` unlinks owned segments and detaches cached ones.  Because
all segment names carry the pool family's prefix
(``reproshm-<driver pid>-<token>-``), a driver can additionally reap the
segments of workers that died without cleaning up
(:func:`reap_segments`), so leaked pools never outlive the backend --
the mp backend calls it from ``close()`` and from its ``atexit`` guard.

The size threshold is ``DEFAULT_THRESHOLD`` bytes, overridable per
backend (``MultiprocessingBackend(p, shm_threshold=...)``) or globally
through the ``REPRO_SHM_THRESHOLD`` environment variable (``0`` or a
negative value disables the shared-memory lane entirely; payloads then
ride the pipe inline, still out-of-band pickled).
"""

from __future__ import annotations

import os
import secrets
from multiprocessing import resource_tracker, shared_memory

__all__ = [
    "DEFAULT_THRESHOLD",
    "ShmPool",
    "env_threshold",
    "reap_segments",
    "segment_names",
]

#: payloads of at least this many bytes ride shared memory (64 KiB --
#: below it the pipe's copy costs less than a segment round trip)
DEFAULT_THRESHOLD = 1 << 16

#: granularity of fresh segments (blocks are bump-allocated inside)
_SEGMENT_MIN = 1 << 22

#: keep at most this many idle segments across rounds
_MAX_SEGMENTS = 4

#: cached attachments to foreign segments (LRU-evicted beyond this)
_MAX_ATTACHED = 32

_PREFIX_FMT = "reproshm-{pid}-{token}-"


def env_threshold(default: int | None = DEFAULT_THRESHOLD) -> int | None:
    """Resolve ``REPRO_SHM_THRESHOLD``: unset -> ``default``; ``0`` or
    negative -> ``None`` (shared-memory lane disabled)."""
    raw = os.environ.get("REPRO_SHM_THRESHOLD")
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else None


def pool_family(token: str) -> str:
    """The segment-name prefix shared by a driver pool and its workers'
    pools (the reapable unit)."""
    return _PREFIX_FMT.format(pid=os.getpid(), token=token)


def new_token() -> str:
    return secrets.token_hex(4)


def segment_names(family: str) -> list[str]:
    """Live ``/dev/shm`` segments of one pool family (Linux; empty list
    where the tmpfs mount is not observable)."""
    try:
        return sorted(n for n in os.listdir("/dev/shm") if n.startswith(family))
    except OSError:  # pragma: no cover - non-Linux or restricted /dev
        return []


def reap_segments(family: str) -> int:
    """Force-unlink every surviving segment of ``family``; returns the
    number reaped.  Used for pools whose owners died uncleanly."""
    reaped = 0
    for name in segment_names(family):
        try:
            os.unlink(os.path.join("/dev/shm", name))
            reaped += 1
        except OSError:  # pragma: no cover - raced with owner cleanup
            continue
        _untrack("/" + name)
    return reaped


def _untrack(tracked_name: str) -> None:
    """Drop a resource_tracker registration we satisfied out of band."""
    try:
        resource_tracker.unregister(tracked_name, "shared_memory")
    except Exception:  # pragma: no cover - tracker already gone
        pass


class _Segment:
    """One owned shared-memory segment with a bump allocator."""

    __slots__ = ("shm", "capacity", "used")

    def __init__(self, name: str, capacity: int):
        self.shm = shared_memory.SharedMemory(name=name, create=True, size=capacity)
        self.capacity = self.shm.size  # kernel may round up
        self.used = 0


class ShmPool:
    """Per-process shared-memory allocator + attach cache.

    Parameters
    ----------
    family:
        Name prefix shared with the sibling pools of one backend (see
        :func:`pool_family`).
    role:
        Distinguishes this pool's segments inside the family
        (``"d"`` for the driver, ``"w<rank>"`` per worker).
    threshold:
        Minimum payload size (bytes) routed through shared memory;
        ``None`` disables sharing (:meth:`share` always returns ``None``).
    """

    def __init__(self, family: str, role: str, threshold: int | None = DEFAULT_THRESHOLD):
        self.family = family
        # a non-positive threshold means "disabled", matching the
        # REPRO_SHM_THRESHOLD convention (0 turns the lane off)
        if threshold is not None and threshold <= 0:
            threshold = None
        self.threshold = threshold
        self._role = role
        self._segments: list[_Segment] = []
        self._seg_counter = 0
        self._attached: dict[str, shared_memory.SharedMemory] = {}
        self._closed = False
        #: command seq currently allocating blocks (set by begin_round)
        self._round = 0
        #: highest seq that allocated a block since the last recycle --
        #: the gate release_through compares against the ack frontier
        self._high_round = 0
        #: cumulative bytes copied into owned segments (tx accounting)
        self.bytes_shared = 0
        #: cumulative bytes copied out of foreign segments (rx accounting)
        self.bytes_materialized = 0

    @property
    def enabled(self) -> bool:
        return self.threshold is not None and not self._closed

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def share(self, view: memoryview) -> tuple[str, int] | None:
        """Copy ``view`` into an owned block if it clears the threshold.

        Returns ``(segment_name, offset)`` for the descriptor, or
        ``None`` when the payload should stay on the pipe.
        """
        nbytes = view.nbytes
        if self.threshold is None or self._closed or nbytes < self.threshold:
            return None
        seg = self._block(nbytes)
        offset = seg.used
        seg.shm.buf[offset:offset + nbytes] = view
        seg.used = offset + nbytes
        self.bytes_shared += nbytes
        # max, not assignment: a coalesced command frame tags its blocks
        # with the newest batched seq, then the batch's entries execute
        # under their own (older) rounds -- the high-water mark must not
        # regress, or blocks still referenced by unexecuted batched
        # commands would be recycled early
        self._high_round = max(self._high_round, self._round)
        return seg.shm.name, offset

    def begin_round(self, seq: int) -> None:
        """Tag subsequent allocations with command ``seq`` (rounds are
        monotone: the runtime issues seqs in increasing order)."""
        self._round = seq

    def _block(self, nbytes: int) -> _Segment:
        for seg in self._segments:
            if seg.capacity - seg.used >= nbytes:
                return seg
        name = f"{self.family}{self._role}.{self._seg_counter}"
        self._seg_counter += 1
        seg = _Segment(name, max(_SEGMENT_MIN, nbytes))
        self._segments.append(seg)
        return seg

    def release_round(self) -> None:
        """Recycle every owned block (all receivers are provably done).

        Idle segments beyond ``_MAX_SEGMENTS`` are unlinked so one burst
        of huge payloads does not pin its peak footprint forever; the
        *largest* segments are the ones retained, so a steady-state
        workload keeps reusing the same hot segments (stable names the
        peers' attach caches already hold) instead of churning fresh
        ones every round.
        """
        for seg in self._segments:
            seg.used = 0
        self._high_round = 0
        if len(self._segments) > _MAX_SEGMENTS:
            self._segments.sort(key=lambda seg: seg.capacity, reverse=True)
            while len(self._segments) > _MAX_SEGMENTS:
                self._unlink(self._segments.pop())

    def release_through(self, acked: int) -> None:
        """Recycle all blocks iff every block allocated so far belongs
        to a round ``<= acked`` (the caller's ack frontier: those blocks
        were provably copied out by their receivers).  The bump
        allocator recycles wholesale only, so one outstanding newer
        round defers the whole recycle -- memory stays bounded by the
        pipeline depth times the per-round footprint."""
        if self._high_round > acked:
            return
        self.release_round()

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def materialize(self, name: str, offset: int, nbytes: int) -> bytearray:
        """Copy one block of a (possibly foreign) segment into private,
        writable memory.  Attachments are cached so recycled segments
        are mapped once per process."""
        shm = self._attached.get(name)
        if shm is not None:
            # true LRU: re-insert on every hit so eviction below (which
            # pops the *least* recently used front entry) never throws
            # out a hot attachment
            self._attached[name] = self._attached.pop(name)
        else:
            own = next((s.shm for s in self._segments if s.shm.name == name), None)
            shm = own if own is not None else shared_memory.SharedMemory(name=name)
            if own is None:
                while len(self._attached) >= _MAX_ATTACHED:
                    lru = next(iter(self._attached))
                    self._detach(self._attached.pop(lru))
                self._attached[name] = shm
        out = bytearray(shm.buf[offset:offset + nbytes])
        self.bytes_materialized += nbytes
        return out

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _detach(self, shm: shared_memory.SharedMemory) -> None:
        # no unregister here: with the default fork start method every
        # process shares one resource tracker, where the attach-time
        # registration (py<3.13 registers unconditionally) deduplicates
        # against the owner's -- the owner's unlink drops the single
        # entry, and a second unregister would make the tracker complain
        try:
            shm.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def _unlink(self, seg: _Segment) -> None:
        try:
            seg.shm.close()
            seg.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - reaped by sibling
            pass  # the reaper already dropped the tracker entry
        except OSError:  # pragma: no cover - interpreter teardown
            pass

    def close(self) -> None:
        """Unlink owned segments and detach cached foreign ones."""
        if self._closed:
            return
        self._closed = True
        while self._segments:
            self._unlink(self._segments.pop())
        while self._attached:
            _, shm = self._attached.popitem()
            self._detach(shm)

    def __del__(self):  # pragma: no cover - interpreter-shutdown safety
        try:
            self.close()
        except Exception:
            pass
