"""Shared-memory segment pool: the bulk-payload lane of the mp backend.

The mp transport frames every message as a protocol-5 pickle whose
out-of-band buffers are split into two lanes (see
:mod:`repro.machine.backends.transport`):

* buffers *below* the size threshold ride the pipe inline, written by
  scatter-gather ``os.writev`` with no intermediate concatenation;
* buffers *at or above* the threshold are copied once into a block of a
  :class:`multiprocessing.shared_memory.SharedMemory` segment and only a
  ``(name, offset, nbytes, flag_offset)`` descriptor crosses the pipe.
  The receiver consumes the block **in place**: :meth:`ShmPool.
  materialize` returns a zero-copy view of the owner's segment, so a
  payload is copied exactly once end to end (producer into the
  segment), not twice.

Block release protocol
----------------------
Zero-copy consumption means the arrival of a *newer* message no longer
proves an older block is dead -- the receiver may hold views of it
indefinitely (a resident :class:`~repro.machine.dist_array.DistArray`
chunk decoded straight out of a ``put`` frame, a fetched result the
caller kept).  Each block therefore carries a 64-byte header in the
segment itself, holding an 8-byte *release flag*:

* the owner zeroes the flag when it allocates the block
  (:meth:`ShmPool.share`);
* the (single) consumer arms a :func:`weakref.finalize` on the
  zero-copy carrier it hands to ``pickle``; when the last decoded view
  dies, the finalizer writes the flag through the still-open mapping;
* the owner recycles a segment (:meth:`ShmPool.release_through`) only
  once **every** block in it is flagged *and* the runtime's ack
  frontier -- the highest command seq whose results the driver fully
  collected, piggybacked on every command envelope -- has passed the
  newest round that allocated in it.  The frontier gate is the leak
  backstop: flags are authoritative for liveness, the frontier bounds
  how early a round may be reclaimed under pipelined issue.

Every block has exactly one consumer: the driver addresses each frame
to a single worker (tree fan-out re-encodes per hop on the forwarding
worker's own pool), so one flag per block suffices -- no refcounts.

Segments are bump-allocated; recycling is wholesale per segment, so a
long-lived view pins only its own segment (fresh shares go to new
segments) and footprint stays bounded by the pipeline depth plus
whatever the receivers genuinely keep alive.  Segments of *other*
pools are attached lazily and cached (:meth:`ShmPool.materialize`), so
a recycled segment is never re-mmapped.

``close()`` unlinks owned segments and detaches cached ones; both are
safe while zero-copy views are still alive (POSIX keeps the memory
until the last mapping closes, and mappings with exported views simply
stay open until those views die).  Because all segment names carry the
pool family's prefix (``reproshm-<driver pid>-<token>-``), a driver can
additionally reap the segments of workers that died without cleaning up
(:func:`reap_segments`), so leaked pools never outlive the backend --
the mp backend calls it from ``close()`` and from its ``atexit`` guard.

The size threshold is ``DEFAULT_THRESHOLD`` bytes, overridable per
backend (``MultiprocessingBackend(p, shm_threshold=...)``) or globally
through the ``REPRO_SHM_THRESHOLD`` environment variable (``0`` or a
negative value disables the shared-memory lane entirely; payloads then
ride the pipe inline, still out-of-band pickled).
"""

from __future__ import annotations

import os
import secrets
import weakref
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = [
    "DEFAULT_THRESHOLD",
    "ShmPool",
    "env_threshold",
    "reap_segments",
    "segment_names",
]

#: payloads of at least this many bytes ride shared memory (64 KiB --
#: below it the pipe's copy costs less than a segment round trip)
DEFAULT_THRESHOLD = 1 << 16

#: granularity of fresh segments (blocks are bump-allocated inside)
_SEGMENT_MIN = 1 << 22

#: keep at most this many idle segments across rounds
_MAX_SEGMENTS = 4

#: cached attachments to foreign segments (LRU-evicted beyond this)
_MAX_ATTACHED = 32

#: per-block header: 8-byte release flag, padded so payloads start
#: 64-byte aligned (cache-line; also a happy alignment for any dtype)
_HEADER = 64

_PREFIX_FMT = "reproshm-{pid}-{token}-"

_FLAG_CLEAR = b"\x00" * 8


def env_threshold(default: int | None = DEFAULT_THRESHOLD) -> int | None:
    """Resolve ``REPRO_SHM_THRESHOLD``: unset -> ``default``; ``0`` or
    negative -> ``None`` (shared-memory lane disabled)."""
    raw = os.environ.get("REPRO_SHM_THRESHOLD")
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else None


def pool_family(token: str) -> str:
    """The segment-name prefix shared by a driver pool and its workers'
    pools (the reapable unit)."""
    return _PREFIX_FMT.format(pid=os.getpid(), token=token)


def new_token() -> str:
    return secrets.token_hex(4)


def segment_names(family: str) -> list[str]:
    """Live ``/dev/shm`` segments of one pool family (Linux; empty list
    where the tmpfs mount is not observable)."""
    try:
        return sorted(n for n in os.listdir("/dev/shm") if n.startswith(family))
    except OSError:  # pragma: no cover - non-Linux or restricted /dev
        return []


def reap_segments(family: str) -> int:
    """Force-unlink every surviving segment of ``family``; returns the
    number reaped.  Used for pools whose owners died uncleanly."""
    reaped = 0
    for name in segment_names(family):
        try:
            os.unlink(os.path.join("/dev/shm", name))
            reaped += 1
        except OSError:  # pragma: no cover - raced with owner cleanup
            continue
        _untrack("/" + name)
    return reaped


def _untrack(tracked_name: str) -> None:
    """Drop a resource_tracker registration we satisfied out of band."""
    try:
        resource_tracker.unregister(tracked_name, "shared_memory")
    except Exception:  # pragma: no cover - tracker already gone
        pass


def _flag_release(shm: shared_memory.SharedMemory, flag_off: int) -> None:
    """Finalizer of a zero-copy carrier: tell the owning pool the block
    is dead.  ``shm`` is held by the finalizer itself, so the mapping is
    guaranteed open here; anything failing means the interpreter is
    tearing down and the owner's close/reap backstop covers us."""
    try:
        shm.buf[flag_off] = 1
    except Exception:  # pragma: no cover - interpreter shutdown
        pass


class _SafeSharedMemory(shared_memory.SharedMemory):
    """A segment handle whose ``close`` tolerates live exports.

    With zero-copy consumption a mapping legitimately outlives its
    handle: decoded views pin the pages until they die (the OS reclaims
    them with the last mapping), so closing a handle while views exist
    must be a deferral, not an error -- in particular inside ``__del__``
    at interpreter shutdown, where ``weakref.finalize``'s atexit pass
    can drop the handle before long-lived views are torn down."""

    def close(self) -> None:
        try:
            super().close()
        except BufferError:
            pass


class _Segment:
    """One owned shared-memory segment with a bump allocator."""

    __slots__ = ("shm", "capacity", "used", "pending", "high_round")

    def __init__(self, name: str, capacity: int):
        self.shm = _SafeSharedMemory(name=name, create=True, size=capacity)
        self.capacity = self.shm.size  # kernel may round up
        self.used = 0
        #: flag offsets of blocks not yet confirmed dead by their consumer
        self.pending: list[int] = []
        #: newest round that allocated here since the last recycle
        self.high_round = 0


class ShmPool:
    """Per-process shared-memory allocator + attach cache.

    Parameters
    ----------
    family:
        Name prefix shared with the sibling pools of one backend (see
        :func:`pool_family`).
    role:
        Distinguishes this pool's segments inside the family
        (``"d"`` for the driver, ``"w<rank>"`` per worker).
    threshold:
        Minimum payload size (bytes) routed through shared memory;
        ``None`` disables sharing (:meth:`share` always returns ``None``).
    """

    def __init__(self, family: str, role: str, threshold: int | None = DEFAULT_THRESHOLD):
        self.family = family
        # a non-positive threshold means "disabled", matching the
        # REPRO_SHM_THRESHOLD convention (0 turns the lane off)
        if threshold is not None and threshold <= 0:
            threshold = None
        self.threshold = threshold
        self._role = role
        self._segments: list[_Segment] = []
        self._seg_counter = 0
        self._attached: dict[str, shared_memory.SharedMemory] = {}
        self._closed = False
        #: command seq currently allocating blocks (set by begin_round)
        self._round = 0
        #: cumulative bytes copied into owned segments (tx accounting)
        self.bytes_shared = 0
        #: cumulative bytes consumed out of foreign segments (rx
        #: accounting; zero-copy reads count their mapped bytes)
        self.bytes_materialized = 0

    @property
    def enabled(self) -> bool:
        return self.threshold is not None and not self._closed

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def share(self, view: memoryview) -> tuple[str, int, int] | None:
        """Copy ``view`` into an owned block if it clears the threshold.

        Returns ``(segment_name, data_offset, flag_offset)`` for the
        descriptor, or ``None`` when the payload should stay on the
        pipe.  The block's release flag starts cleared; the consumer
        sets it once its last zero-copy view dies.
        """
        nbytes = view.nbytes
        if self.threshold is None or self._closed or nbytes < self.threshold:
            return None
        seg, flag_off, data_off = self._block(nbytes)
        seg.shm.buf[flag_off:flag_off + 8] = _FLAG_CLEAR
        seg.shm.buf[data_off:data_off + nbytes] = view
        seg.used = data_off + nbytes
        seg.pending.append(flag_off)
        # max, not assignment: a coalesced command frame tags its blocks
        # with the newest batched seq, then the batch's entries execute
        # under their own (older) rounds -- the high-water mark must not
        # regress, or blocks still referenced by unexecuted batched
        # commands would be recycled early
        seg.high_round = max(seg.high_round, self._round)
        self.bytes_shared += nbytes
        return seg.shm.name, data_off, flag_off

    def begin_round(self, seq: int) -> None:
        """Tag subsequent allocations with command ``seq`` (rounds are
        monotone: the runtime issues seqs in increasing order)."""
        self._round = seq

    def _block(self, nbytes: int) -> tuple[_Segment, int, int]:
        """Reserve header + payload space; returns the segment and the
        (flag, data) offsets of the fresh block."""
        for seg in self._segments:
            flag_off = -(-seg.used // _HEADER) * _HEADER
            if flag_off + _HEADER + nbytes <= seg.capacity:
                return seg, flag_off, flag_off + _HEADER
        name = f"{self.family}{self._role}.{self._seg_counter}"
        self._seg_counter += 1
        seg = _Segment(name, max(_SEGMENT_MIN, _HEADER + nbytes))
        self._segments.append(seg)
        return seg, 0, _HEADER

    def release_round(self) -> None:
        """Recycle every owned block unconditionally (the caller asserts
        all receivers are done -- e.g. a quiesced pool between runs).

        Idle segments beyond ``_MAX_SEGMENTS`` are unlinked so one burst
        of huge payloads does not pin its peak footprint forever; the
        *largest* segments are the ones retained, so a steady-state
        workload keeps reusing the same hot segments (stable names the
        peers' attach caches already hold) instead of churning fresh
        ones every round.
        """
        for seg in self._segments:
            seg.used = 0
            seg.pending.clear()
            seg.high_round = 0
        self._trim()

    def release_through(self, acked: int) -> None:
        """Recycle every segment whose blocks are all flagged dead by
        their consumers and whose newest allocating round is ``<=
        acked`` (the caller's ack frontier).  Flags are authoritative --
        a receiver may legitimately hold a zero-copy view long after its
        command settled -- and the frontier is the pipelining backstop:
        a block is never reclaimed before the driver has collected the
        results of the round that shared it."""
        for seg in self._segments:
            if not seg.used:
                continue
            if seg.pending:
                buf = seg.shm.buf
                seg.pending = [f for f in seg.pending if buf[f] == 0]
            if not seg.pending and seg.high_round <= acked:
                seg.used = 0
                seg.high_round = 0
        self._trim()

    def _trim(self) -> None:
        """Unlink the smallest idle segments beyond ``_MAX_SEGMENTS``
        (segments with live or unconfirmed blocks are never touched)."""
        excess = len(self._segments) - _MAX_SEGMENTS
        if excess <= 0:
            return
        idle = sorted(
            (s for s in self._segments if not s.used and not s.pending),
            key=lambda s: s.capacity,
        )
        for seg in idle[:excess]:
            self._segments.remove(seg)
            self._unlink(seg)

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def materialize(self, name: str, offset: int, nbytes: int,
                    flag_off: int | None = None):
        """Consume one block of a (possibly foreign) segment.

        With ``flag_off`` (the descriptor's flag offset) the block is
        consumed **zero-copy**: the returned carrier is a view of the
        owner's segment, and a finalizer on it writes the release flag
        once the last decoded object aliasing it dies.  Without
        ``flag_off`` the block is copied into private memory (legacy
        descriptors and direct reads).  Attachments are cached so a
        recycled segment is mapped once per process."""
        shm = self._attached.get(name)
        if shm is not None:
            # true LRU: re-insert on every hit so eviction below (which
            # pops the *least* recently used front entry) never throws
            # out a hot attachment
            self._attached[name] = self._attached.pop(name)
        else:
            own = next((s.shm for s in self._segments if s.shm.name == name), None)
            shm = own if own is not None else _SafeSharedMemory(name=name)
            if own is None:
                while len(self._attached) >= _MAX_ATTACHED:
                    lru = next(iter(self._attached))
                    self._detach(self._attached.pop(lru))
                self._attached[name] = shm
        self.bytes_materialized += nbytes
        if flag_off is None:
            return bytearray(shm.buf[offset:offset + nbytes])
        block = np.frombuffer(shm.buf, dtype=np.uint8, count=nbytes,
                              offset=offset)
        # the finalizer owns a reference to ``shm``, so the mapping
        # outlives every view no matter what the attach cache does
        weakref.finalize(block, _flag_release, shm, flag_off)
        return block

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _detach(self, shm: shared_memory.SharedMemory) -> None:
        # no unregister here: with the default fork start method every
        # process shares one resource tracker, where the attach-time
        # registration (py<3.13 registers unconditionally) deduplicates
        # against the owner's -- the owner's unlink drops the single
        # entry, and a second unregister would make the tracker complain
        try:
            # a close with live zero-copy views is a deferral (see
            # _SafeSharedMemory): the mapping dies with its last view
            shm.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def _unlink(self, seg: _Segment) -> None:
        try:
            seg.shm.close()
        except OSError:  # pragma: no cover - interpreter teardown
            pass
        try:
            seg.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - reaped by sibling
            pass  # the reaper already dropped the tracker entry
        except OSError:  # pragma: no cover - interpreter teardown
            pass

    def close(self) -> None:
        """Unlink owned segments and detach cached foreign ones."""
        if self._closed:
            return
        self._closed = True
        while self._segments:
            self._unlink(self._segments.pop())
        while self._attached:
            _, shm = self._attached.popitem()
            self._detach(shm)

    def __del__(self):  # pragma: no cover - interpreter-shutdown safety
        try:
            self.close()
        except Exception:
            pass
