"""Simulated distributed-memory machine substrate.

The paper's algorithms are analysed in a single-ported, full-duplex
message-passing model where a message of ``m`` words costs
``alpha + beta * m``.  This subpackage provides that machine in
simulation:

* :class:`~repro.machine.cost.CostParams` -- the alpha-beta constants and
  analytic collective costs,
* :class:`~repro.machine.comm.Machine` -- ``p`` PEs, RNG streams,
  simulated clocks, communication metering and the collective operations,
* :mod:`~repro.machine.backends` -- pluggable execution backends for the
  collectives' data plane (``"sim"`` in-process, ``"mp"`` one worker
  process per PE),
* :class:`~repro.machine.dist_array.DistArray` -- per-PE NumPy chunks,
* :class:`~repro.machine.metrics.CommMetrics` -- bottleneck-volume
  accounting (the paper's key communication-efficiency metric).
"""

from .backends import (
    Backend,
    ChunkRef,
    MultiprocessingBackend,
    SimBackend,
    WorkerFailure,
    available_backends,
    make_backend,
    register_backend,
)
from .clock import SimClock
from .comm import Machine, MachineReport, PhaseStats
from .cost import FREE_COMMUNICATION, CollectiveCost, CostParams, log2_ceil
from .dist_array import DistArray
from .faults import FaultPlan
from .metrics import CommMetrics, MetricsSnapshot, payload_words

__all__ = [
    "Backend",
    "ChunkRef",
    "CollectiveCost",
    "CommMetrics",
    "CostParams",
    "DistArray",
    "FREE_COMMUNICATION",
    "FaultPlan",
    "Machine",
    "MachineReport",
    "MetricsSnapshot",
    "MultiprocessingBackend",
    "PhaseStats",
    "SimBackend",
    "SimClock",
    "WorkerFailure",
    "available_backends",
    "log2_ceil",
    "make_backend",
    "payload_words",
    "register_backend",
]
