"""Cost model for the simulated distributed-memory machine.

The paper analyses algorithms in the single-ported, full-duplex
point-to-point model: sending a message of ``m`` machine words costs
``alpha + m * beta`` where ``alpha`` is the startup (latency) overhead and
``beta`` the per-word transfer time.  Collective operations over ``p``
processing elements (PEs) built from tree/hypercube schedules then cost
``O(beta * m + alpha * log p)`` (broadcast, reduction, prefix sum, gather,
scatter) following Sanders et al. [33] / Bala et al. [5].

This module defines :class:`CostParams` -- the machine constants -- and
the analytic cost formulas used to charge the simulated per-PE clocks.
Local computation is charged per elementary operation (comparison, move,
hash) so that the modeled running time has the same
``O(work + beta * volume + alpha * startups)`` structure the paper reports.

The default constants are calibrated to a 2016-era InfiniBand cluster
(the paper's InstitutsCluster II): ~1.5 microsecond MPI startup,
~5 GB/s per-node bandwidth, and a few nanoseconds per elementary local
operation for compiled code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "CostParams",
    "CollectiveCost",
    "log2_ceil",
]


def log2_ceil(p: int) -> int:
    """Number of rounds of a binomial-tree/hypercube schedule on ``p`` PEs.

    ``log2_ceil(1) == 0`` -- a collective over a single PE is free of
    communication rounds.
    """
    if p <= 1:
        return 0
    return int(math.ceil(math.log2(p)))


@dataclass(frozen=True)
class CollectiveCost:
    """Cost of one collective: time, and per-PE accounting quantities.

    Attributes
    ----------
    time:
        Modeled wall-clock time charged to every participating PE.
    startups:
        Message startups charged to the busiest PE (the ``alpha`` count).
    words:
        Words sent/received by the busiest PE (the ``beta`` count, i.e.
        the *bottleneck* communication volume of the operation).
    """

    time: float
    startups: int
    words: float


@dataclass(frozen=True)
class CostParams:
    """Machine constants of the alpha-beta model.

    Parameters
    ----------
    alpha:
        Message startup overhead in seconds.  The paper treats this as a
        variable; the default is a realistic InfiniBand MPI latency.
    beta:
        Transfer time per machine word (8 bytes) in seconds.
    time_per_op:
        Time for one elementary local operation (comparison, move, hash
        probe) in seconds.  Used to convert counted local work into
        modeled time.
    word_bytes:
        Size of a machine word; only used for reporting.
    """

    alpha: float = 1.5e-6
    beta: float = 8.0 / 5.0e9  # 8-byte words at 5 GB/s
    time_per_op: float = 2.0e-9
    word_bytes: int = 8

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def p2p(self, words: float) -> float:
        """Time to send one message of ``words`` machine words."""
        return self.alpha + self.beta * float(words)

    def local(self, ops: float) -> float:
        """Time for ``ops`` elementary local operations."""
        return self.time_per_op * float(ops)

    # ------------------------------------------------------------------
    # Collectives: O(beta * m + alpha * log p) family
    # ------------------------------------------------------------------
    def broadcast(self, m: float, p: int) -> CollectiveCost:
        """Broadcast ``m`` words to ``p`` PEs (pipelined binary-tree bound)."""
        r = log2_ceil(p)
        return CollectiveCost(self.alpha * r + self.beta * m, r, m)

    def reduce(self, m: float, p: int) -> CollectiveCost:
        """Reduce a vector of ``m`` words over ``p`` PEs."""
        r = log2_ceil(p)
        return CollectiveCost(self.alpha * r + self.beta * m, r, m)

    def allreduce(self, m: float, p: int) -> CollectiveCost:
        """Reduce + broadcast of an ``m``-word vector."""
        r = log2_ceil(p)
        return CollectiveCost(self.alpha * r + 2.0 * self.beta * m, r, 2.0 * m)

    def scan(self, m: float, p: int) -> CollectiveCost:
        """Inclusive/exclusive prefix sum of ``m``-word vectors."""
        r = log2_ceil(p)
        return CollectiveCost(self.alpha * r + self.beta * m, r, m)

    def allreduce_exscan(self, m: float, p: int) -> CollectiveCost:
        """Fused total + exclusive prefix of ``m``-word vectors.

        One recursive-doubling schedule carrying a (prefix, total)
        accumulator pair: the ``alpha log p`` startups of a separate
        allreduce + exscan are paid once, at twice the per-round payload.
        """
        r = log2_ceil(p)
        return CollectiveCost(self.alpha * r + 2.0 * self.beta * m, r, 2.0 * m)

    def gather(self, m_total: float, p: int) -> CollectiveCost:
        """Gather pieces summing to ``m_total`` words onto one PE (tree)."""
        r = log2_ceil(p)
        return CollectiveCost(self.alpha * r + self.beta * m_total, r, m_total)

    def gather_direct(self, m_total: float, p: int) -> CollectiveCost:
        """Gather with direct point-to-point delivery to the root.

        The root receives ``p - 1`` separate messages; with single-ported
        communication they serialize, which is what makes centralized
        master-worker schemes non-scalable (Section 10.2's Naive
        baseline).
        """
        msgs = max(p - 1, 0)
        return CollectiveCost(self.alpha * msgs + self.beta * m_total, msgs, m_total)

    def scatter(self, m_total: float, p: int) -> CollectiveCost:
        """Scatter a message of ``m_total`` words from one PE to ``p`` PEs."""
        r = log2_ceil(p)
        return CollectiveCost(self.alpha * r + self.beta * m_total, r, m_total)

    def allgather(self, m_per_pe: float, p: int) -> CollectiveCost:
        """All-to-all broadcast (gossiping): every PE contributes
        ``m_per_pe`` words and ends with all ``p`` pieces.

        Time ``O(beta * m * p + alpha * log p)``.
        """
        r = log2_ceil(p)
        vol = m_per_pe * max(p - 1, 0)
        return CollectiveCost(self.alpha * r + self.beta * vol, r, vol)

    def reduce_allgather(self, m_reduce: float, m_per_pe: float, p: int) -> CollectiveCost:
        """Fused allreduce + allgather in one dissemination schedule.

        The reduction accumulator (``m_reduce`` words) rides every round
        of the allgather, so the ``alpha log p`` startups of a separate
        allreduce are saved at the price of ``m_reduce`` extra words per
        round.  Used for the sample-size + sample-payload pairs of the
        frequent-objects pipelines.
        """
        r = log2_ceil(p)
        vol = m_per_pe * max(p - 1, 0) + m_reduce * r
        return CollectiveCost(self.alpha * r + self.beta * vol, r, vol)

    def alltoall_direct(self, m_per_pair: float, p: int) -> CollectiveCost:
        """All-to-all personalized, direct delivery.

        Every PE sends one ``m``-word message to every other PE:
        ``O(beta * m * p + alpha * p)``.
        """
        msgs = max(p - 1, 0)
        vol = m_per_pair * msgs
        return CollectiveCost(self.alpha * msgs + self.beta * vol, msgs, vol)

    def alltoall_hypercube(self, m_per_pair: float, p: int) -> CollectiveCost:
        """All-to-all personalized, indirect (hypercube) delivery.

        ``O(beta * m * p * log p + alpha * log p)`` -- trades bandwidth
        for latency, cf. Leighton [21, Theorem 3.24].
        """
        r = log2_ceil(p)
        vol = m_per_pair * p / 2.0 * r
        return CollectiveCost(self.alpha * r + self.beta * vol, r, vol)

    def barrier(self, p: int) -> CollectiveCost:
        """Synchronization barrier (an allreduce of zero words)."""
        r = log2_ceil(p)
        return CollectiveCost(self.alpha * r, r, 0.0)


# A cost model in which communication is free; useful to isolate local
# work in ablation benchmarks.
FREE_COMMUNICATION = CostParams(alpha=0.0, beta=0.0)
