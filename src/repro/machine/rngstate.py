"""RNG state pass-through for resident (in-worker) execution.

Several algorithms draw from the machine's random streams
(:attr:`Machine.rngs`, :attr:`Machine.shared_rng`) *while* operating on
worker-resident data.  Shipping the generator objects themselves would
fork the streams: the in-process ``sim`` backend would advance the
driver's generators while a real backend advances pickled copies, and
the two backends would diverge on the very next driver-side draw.

Instead, resident callbacks receive the generator *state*, reconstruct
an identical generator where the data lives, draw from it, and return
the final state; the driver then fast-forwards its own stream to that
state.  Both backends therefore observe exactly the same draw sequence,
and driver-side and worker-side draws interleave in one well-defined
stream.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rng_state", "rng_from_state", "restore_rng"]


def rng_state(rng: np.random.Generator) -> dict:
    """Portable snapshot of a generator's position in its stream."""
    return rng.bit_generator.state


def rng_from_state(state: dict) -> np.random.Generator:
    """Reconstruct a generator at exactly the snapshotted position.

    The bit-generator class is looked up from the state dict itself, so
    any NumPy bit generator (the machine uses PCG64) round-trips.
    """
    bg = getattr(np.random, state["bit_generator"])()
    bg.state = state
    return np.random.Generator(bg)


def restore_rng(rng: np.random.Generator, state: dict) -> None:
    """Fast-forward a driver-side generator to a returned final state."""
    rng.bit_generator.state = state
