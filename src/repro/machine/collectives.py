"""Collective communication operations on the simulated machine.

Every operation takes the per-PE contributions as a list of length ``p``
(one entry per PE) and returns the per-PE results as a list of length
``p``.  This is the SPMD-by-construction style described in DESIGN.md:
the call site reads exactly like the corresponding mpi4py collective,
but all ``p`` ranks are driven lock-step by one Python call.

Each collective

1. computes its result (NumPy where possible),
2. records per-PE message/word counters following the actual
   binomial-tree / hypercube schedule it models, and
3. charges the machine's simulated clocks with the analytic cost
   (``O(beta * m + alpha * log p)`` for the tree collectives).

The all-to-all and the aggregating exchange really route data through
the hypercube rounds, so their per-PE volumes are measured, not assumed.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from .cost import log2_ceil

__all__ = [
    "binomial_edges",
    "binomial_subtrees",
    "bruck_hops",
    "bruck_send_blocks",
    "hypercube_rounds",
    "combine",
    "REDUCTION_OPS",
]


# ----------------------------------------------------------------------
# Reduction operators
# ----------------------------------------------------------------------

def _add(a, b):
    return a + b


def _min(a, b):
    return np.minimum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else min(a, b)


def _max(a, b):
    return np.maximum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else max(a, b)


REDUCTION_OPS: dict[str, Callable] = {
    "sum": _add,
    "min": _min,
    "max": _max,
}


def combine(op, a, b):
    """Apply reduction operator ``op`` (name or callable) to two values."""
    if callable(op):
        return op(a, b)
    try:
        return REDUCTION_OPS[op](a, b)
    except KeyError:
        raise ValueError(
            f"unknown reduction op {op!r}; expected one of {sorted(REDUCTION_OPS)}"
        ) from None


# ----------------------------------------------------------------------
# Communication schedules
# ----------------------------------------------------------------------

def binomial_edges(p: int, root: int = 0) -> list[tuple[int, int, int]]:
    """Edges ``(round, parent, child)`` of a binomial broadcast tree.

    In round ``r`` every PE that already holds the message forwards it to
    a partner at distance ``2^r`` (relative to the root).  A reduction
    uses the same edges in reverse order with child/parent swapped.
    """
    edges: list[tuple[int, int, int]] = []
    have = 1  # number of PEs holding the data (in root-relative space)
    r = 0
    while have < p:
        for i in range(min(have, p - have)):
            src = (root + i) % p
            dst = (root + i + have) % p
            edges.append((r, src, dst))
        have *= 2
        r += 1
    return edges


def binomial_subtrees(p: int, root: int = 0) -> dict[int, list[int]]:
    """Subtree membership of every PE in the binomial tree rooted at ``root``.

    ``subtrees[i]`` lists the ranks (including ``i`` itself) whose path
    to the root passes through ``i`` -- what a tree scatter must forward
    to ``i``'s subtree.
    """
    children: dict[int, list[int]] = {i: [] for i in range(p)}
    for _, s, d in binomial_edges(p, root):
        children[s].append(d)
    subtrees: dict[int, list[int]] = {}

    def fill(node: int) -> list[int]:
        out = [node]
        for c in children[node]:
            out += fill(c)
        subtrees[node] = out
        return out

    fill(root)
    return subtrees


def bruck_hops(p: int) -> list[int]:
    """Hop distances of the dissemination (Bruck) schedule on ``p`` PEs.

    In round ``r`` every PE sends to ``(i + hops[r]) mod p`` and receives
    from ``(i - hops[r]) mod p``; after ``ceil(log2 p)`` rounds an
    allgather is complete on *any* ``p``, power of two or not.  Total
    message count is ``p * ceil(log2 p)`` -- the O(p log p) schedule that
    replaces direct O(p^2) exchanges inside real backends.
    """
    hops: list[int] = []
    hop = 1
    while hop < p:
        hops.append(hop)
        hop *= 2
    return hops


def bruck_send_blocks(p: int, rank: int, hop: int, held: Sequence[int]) -> list[int]:
    """Blocks ``rank`` must forward to ``(rank + hop) % p`` in a Bruck
    allgather round: the held source ranks the receiver does not already
    own (the receiver holds the ``hop`` ranks ending at itself)."""
    dst = (rank + hop) % p
    receiver_has = {(dst - i) % p for i in range(min(hop, p))}
    return [b for b in held if b not in receiver_has]


def hypercube_rounds(p: int) -> list[list[tuple[int, int]]]:
    """Partner pairs per round of a hypercube exchange on ``p`` PEs.

    For ``p`` a power of two this is the standard dimension-by-dimension
    schedule (every PE has a partner in every round).  For general ``p``
    pairs whose partner index would exceed ``p - 1`` simply sit the round
    out; correctness of the callers does not rely on them.
    """
    rounds: list[list[tuple[int, int]]] = []
    r = 1
    while r < p:
        pairs = []
        for i in range(p):
            j = i ^ r
            if i < j < p:
                pairs.append((i, j))
        rounds.append(pairs)
        r *= 2
    return rounds


def tree_reduce_order(values: Sequence, op) -> object:
    """Combine ``values`` in binomial-tree order (matters only for
    non-associative floating-point rounding; keeps results deterministic
    across runs)."""
    items = list(values)
    if not items:
        raise ValueError("reduction over zero PEs")
    while len(items) > 1:
        nxt = []
        for i in range(0, len(items) - 1, 2):
            nxt.append(combine(op, items[i], items[i + 1]))
        if len(items) % 2:
            nxt.append(items[-1])
        items = nxt
    return items[0]


def inclusive_scan(values: Sequence, op) -> list:
    """Inclusive prefix combine of a list of per-PE values."""
    out = []
    acc = None
    for v in values:
        acc = v if acc is None else combine(op, acc, v)
        out.append(acc)
    return out
