"""Per-PE simulated clocks.

Each PE carries a local clock (seconds of modeled time).  Local work
advances a single PE's clock; a collective synchronizes all participants
to ``max(clock) + collective_time``; a point-to-point message advances
both endpoints to ``max(sender, receiver) + alpha + beta * words``.

The makespan -- ``clock.max()`` after the algorithm finished -- is the
modeled parallel running time that the weak-scaling benchmarks report in
place of the paper's wall-clock measurements.  Because straggler effects
propagate through the ``max`` at every synchronization point, load
imbalance shows up in the makespan exactly as it would on a real
machine.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SimClock"]


class SimClock:
    """Vector of per-PE clocks with charging primitives."""

    def __init__(self, p: int):
        if p < 1:
            raise ValueError(f"need at least one PE, got p={p}")
        self.p = p
        self.t = np.zeros(p, dtype=np.float64)
        #: cumulative time spent in local computation, per PE
        self.work_time = np.zeros(p, dtype=np.float64)
        #: cumulative time attributed to communication (incl. waiting)
        self.comm_time = np.zeros(p, dtype=np.float64)

    # ------------------------------------------------------------------
    def charge_local(self, seconds) -> None:
        """Advance clocks by per-PE local-work durations.

        ``seconds`` may be a scalar (applied to every PE) or an array of
        length ``p``.
        """
        dt = np.broadcast_to(np.asarray(seconds, dtype=np.float64), (self.p,))
        if np.any(dt < 0):
            raise ValueError("negative local work duration")
        self.t += dt
        self.work_time += dt

    def charge_local_one(self, rank: int, seconds: float) -> None:
        """Advance a single PE's clock by ``seconds`` of local work."""
        if seconds < 0:
            raise ValueError("negative local work duration")
        self.t[rank] += seconds
        self.work_time[rank] += seconds

    # ------------------------------------------------------------------
    def sync_collective(self, seconds: float, ranks=None) -> float:
        """Synchronize ``ranks`` (default: all) at ``max(t) + seconds``.

        Returns the new common clock value.  The waiting time of early
        arrivers plus the collective's own duration is attributed to
        communication time.
        """
        if seconds < 0:
            raise ValueError("negative collective duration")
        if ranks is None:
            start = float(self.t.max())
            end = start + seconds
            self.comm_time += end - self.t
            self.t[:] = end
        else:
            ranks = np.asarray(ranks, dtype=np.intp)
            start = float(self.t[ranks].max())
            end = start + seconds
            self.comm_time[ranks] += end - self.t[ranks]
            self.t[ranks] = end
        return end

    def charge_p2p(self, src: int, dst: int, seconds: float) -> float:
        """One message between two PEs; both end at the same time."""
        if seconds < 0:
            raise ValueError("negative message duration")
        start = max(self.t[src], self.t[dst])
        end = start + seconds
        self.comm_time[src] += end - self.t[src]
        self.comm_time[dst] += end - self.t[dst]
        self.t[src] = end
        self.t[dst] = end
        return end

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Modeled parallel running time so far."""
        return float(self.t.max())

    @property
    def imbalance(self) -> float:
        """max/mean ratio of per-PE busy time (1.0 == perfectly balanced)."""
        busy = self.work_time
        mean = float(busy.mean())
        if mean == 0.0:
            return 1.0
        return float(busy.max()) / mean

    def reset(self) -> None:
        self.t[:] = 0.0
        self.work_time[:] = 0.0
        self.comm_time[:] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(p={self.p}, makespan={self.makespan:.3e}s)"
