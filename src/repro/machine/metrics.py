"""Per-PE communication metering.

The paper's headline quantity is the *bottleneck communication volume*:
the maximum over PEs of the number of machine words a PE sends or
receives.  :class:`CommMetrics` tracks, for every PE,

* words sent and received,
* message startups initiated and accepted, and
* a per-operation-kind breakdown (how much volume each collective or
  algorithm phase contributed),

so benchmarks can report exactly the terms that appear in the paper's
``O(work + beta * volume + alpha * startups)`` bounds.

Metrics are plain counters: recording is decoupled from the simulated
clock (see :mod:`repro.machine.clock`) so that volume can be audited
independently of the time model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CommMetrics", "MetricsSnapshot", "payload_words"]


def payload_words(obj) -> int:
    """Number of machine words needed to transmit ``obj``.

    Conventions: every scalar (int, float, key, count) is one machine
    word; a key->count mapping costs two words per entry; arrays cost one
    word per element.  ``None`` is free (it encodes "no message").
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.size)
    if isinstance(obj, dict):
        return 2 * len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(payload_words(x) for x in obj)
    if isinstance(obj, (int, float, np.integer, np.floating, bool, np.bool_)):
        return 1
    if isinstance(obj, str):
        # Keys in examples may be short strings; charge one word per
        # 8 characters, at least one.
        return max(1, (len(obj) + 7) // 8)
    if hasattr(obj, "comm_words"):
        return int(obj.comm_words())
    raise TypeError(f"cannot size payload of type {type(obj)!r}")


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable copy of the counters, used for phase-wise differencing."""

    words_sent: np.ndarray
    words_recv: np.ndarray
    msgs_sent: np.ndarray
    msgs_recv: np.ndarray

    def __sub__(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        return MetricsSnapshot(
            self.words_sent - other.words_sent,
            self.words_recv - other.words_recv,
            self.msgs_sent - other.msgs_sent,
            self.msgs_recv - other.msgs_recv,
        )

    @property
    def bottleneck_words(self) -> float:
        """max over PEs of max(sent, received) -- the paper's volume metric."""
        if self.words_sent.size == 0:
            return 0.0
        return float(np.maximum(self.words_sent, self.words_recv).max())

    @property
    def bottleneck_startups(self) -> int:
        if self.msgs_sent.size == 0:
            return 0
        return int(np.maximum(self.msgs_sent, self.msgs_recv).max())

    @property
    def total_traffic(self) -> float:
        return float(self.words_sent.sum())


class CommMetrics:
    """Mutable per-PE communication counters for a ``p``-PE machine."""

    def __init__(self, p: int):
        if p < 1:
            raise ValueError(f"need at least one PE, got p={p}")
        self.p = p
        self.words_sent = np.zeros(p, dtype=np.float64)
        self.words_recv = np.zeros(p, dtype=np.float64)
        self.msgs_sent = np.zeros(p, dtype=np.int64)
        self.msgs_recv = np.zeros(p, dtype=np.int64)
        #: volume contributed per operation kind, e.g. "allreduce"
        self.by_kind: dict[str, float] = {}
        #: number of invocations per operation kind
        self.calls: dict[str, int] = {}
        #: *measured* transport bytes per backend command kind -- bytes
        #: that physically crossed the driver's channels (``wire_bytes``:
        #: pipe frames for ``mp``, socket frames for ``tcp``) vs payload
        #: bytes that rode shared-memory blocks (``shm_bytes``; only the
        #: ``mp`` launcher has that lane -- ``tcp`` reports zero by
        #: construction).  Unlike the modeled word counters above these
        #: are real data-plane quantities, populated only by real
        #: backends (``Machine.sync_transport``); ``sim`` leaves them
        #: empty.
        self.wire_bytes: dict[str, int] = {}
        self.shm_bytes: dict[str, int] = {}

    # ------------------------------------------------------------------
    def charge(self, kind: str, words: float = 0.0, calls: int = 1) -> None:
        """Attribute ``words`` of volume (and ``calls`` invocations) to an
        operation kind without touching the per-PE counters.

        The single entry point for the per-kind breakdown: the schedule
        recorders below route through it, and algorithm phases that model
        a schedule analytically (e.g. the Batcher merge of the
        redistribution planner) use it instead of poking ``by_kind`` /
        ``calls`` dictionaries inline.
        """
        self.by_kind[kind] = self.by_kind.get(kind, 0.0) + words
        self.calls[kind] = self.calls.get(kind, 0) + calls

    def record_transport(self, kind: str, wire_bytes: int, shm_bytes: int) -> None:
        """Attribute measured transport traffic to a backend command
        kind (the data-plane complement of :meth:`charge`'s modeled
        words)."""
        if wire_bytes:
            self.wire_bytes[kind] = self.wire_bytes.get(kind, 0) + int(wire_bytes)
        if shm_bytes:
            self.shm_bytes[kind] = self.shm_bytes.get(kind, 0) + int(shm_bytes)

    def record_p2p(self, src: int, dst: int, words: float, kind: str = "p2p") -> None:
        """One message of ``words`` machine words from ``src`` to ``dst``."""
        if src == dst:
            return  # local handoff: no communication
        self.words_sent[src] += words
        self.words_recv[dst] += words
        self.msgs_sent[src] += 1
        self.msgs_recv[dst] += 1
        self.charge(kind, words)

    def record_schedule(
        self,
        edges,
        kind: str,
    ) -> None:
        """Record a batch of (src, dst, words) message triples."""
        total = 0.0
        for src, dst, words in edges:
            if src == dst:
                continue
            self.words_sent[src] += words
            self.words_recv[dst] += words
            self.msgs_sent[src] += 1
            self.msgs_recv[dst] += 1
            total += words
        self.charge(kind, total)

    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            self.words_sent.copy(),
            self.words_recv.copy(),
            self.msgs_sent.copy(),
            self.msgs_recv.copy(),
        )

    def reset(self) -> None:
        self.words_sent[:] = 0
        self.words_recv[:] = 0
        self.msgs_sent[:] = 0
        self.msgs_recv[:] = 0
        self.by_kind.clear()
        self.calls.clear()
        self.wire_bytes.clear()
        self.shm_bytes.clear()

    # ------------------------------------------------------------------
    @property
    def bottleneck_words(self) -> float:
        return self.snapshot().bottleneck_words

    @property
    def bottleneck_startups(self) -> int:
        return self.snapshot().bottleneck_startups

    @property
    def total_traffic(self) -> float:
        return float(self.words_sent.sum())

    def describe(self) -> str:
        """Human-readable multi-line summary of the counters."""
        lines = [
            f"CommMetrics(p={self.p})",
            f"  bottleneck volume : {self.bottleneck_words:,.0f} words",
            f"  bottleneck startups: {self.bottleneck_startups:,d}",
            f"  total traffic     : {self.total_traffic:,.0f} words",
        ]
        for kind in sorted(self.by_kind):
            lines.append(
                f"  {kind:<18s}: {self.by_kind[kind]:,.0f} words"
                f" in {self.calls.get(kind, 0):,d} calls"
            )
        if self.wire_bytes or self.shm_bytes:
            lines.append("  measured transport (wire / shm bytes):")
            for kind in sorted(set(self.wire_bytes) | set(self.shm_bytes)):
                lines.append(
                    f"    {kind:<16s}: {self.wire_bytes.get(kind, 0):,d}"
                    f" / {self.shm_bytes.get(kind, 0):,d}"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommMetrics(p={self.p}, bottleneck={self.bottleneck_words:.0f}w,"
            f" traffic={self.total_traffic:.0f}w)"
        )
