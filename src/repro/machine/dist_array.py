"""Distributed arrays: one NumPy chunk per PE, resident in the backend.

:class:`DistArray` is the input/output container of every algorithm in
this package.  Chunks are pinned behind an opaque
:class:`~repro.machine.backends.base.ChunkRef` handle in the machine's
execution backend -- in worker-process memory for real backends
(``"mp"``), in a driver-side store for the in-process default
(``"sim"``).  Per-PE algorithm callbacks therefore execute *where the
data lives* (:meth:`map_chunks`, :meth:`map_values`, :meth:`map_collect`)
and only small per-PE values travel (:meth:`map_chunks`,
:meth:`map_values`, :meth:`map_collect`); full chunks cross the process
boundary exactly twice -- once when the input is pinned and once if the
driver asks for the result (:attr:`chunks`, :meth:`concat`).  On the
``mp`` backend those two crossings ride the zero-copy payload lanes
(out-of-band pickling; shared-memory blocks above the size threshold --
see the README's "Transports" section), so pinning and fetching cost one
memcpy per side instead of an in-band pickle through the pipe.

Cross-PE data flow still goes exclusively through
:class:`repro.machine.Machine` collectives: the resident map methods
never communicate by themselves (their optional fused value collective
is charged through the machine's control plane by the call sites).
"""

from __future__ import annotations

import weakref
from functools import partial
from typing import Callable, Iterable, Sequence

import numpy as np

from .backends.base import ChunkRef
from .comm import Machine

__all__ = ["DistArray"]


# ----------------------------------------------------------------------
# Module-level resident callbacks (must be picklable for real backends)
# ----------------------------------------------------------------------

def _sort_chunk(rank: int, chunk: np.ndarray) -> tuple:
    return (np.sort(chunk), None)

def _negate_chunk(rank: int, chunk: np.ndarray) -> tuple:
    return (-chunk, None)

def _bernoulli_take(rank: int, chunk: np.ndarray, addr, rho: float) -> np.ndarray:
    """Bernoulli(rho) sample of ``chunk``, drawn in the kernel from the
    counter-addressed per-PE stream (nothing but ``addr`` travels)."""
    from ..common.sampling import bernoulli_sample_indices

    idx = bernoulli_sample_indices(addr.local(rank), int(chunk.size), rho)
    return chunk.copy() if idx is None else chunk[idx]

def _measured(fn: Callable, rank: int, chunk: np.ndarray) -> tuple:
    """Wrap a chunk->chunk callback so the driver learns the new size
    and dtype without fetching the (worker-resident) result."""
    out = np.asarray(fn(rank, chunk))
    if out.ndim != 1:
        raise ValueError(
            f"map_chunks callback must return a one-dimensional array, "
            f"got shape {out.shape} on PE {rank}"
        )
    return (out, (out.size, out.dtype.str))


#: wrapped-callback cache: repeated map_chunks with the same fn must
#: reuse one partial so real backends' pickle caches can hit (weak keys,
#: so user callbacks are not pinned alive)
_measured_cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _measured_wrapper(fn: Callable) -> Callable:
    try:
        wrapped = _measured_cache.get(fn)
    except TypeError:  # unhashable or non-weakrefable callable
        return partial(_measured, fn)
    if wrapped is None:
        wrapped = partial(_measured, fn)
        try:
            _measured_cache[fn] = wrapped
        except TypeError:
            pass
    return wrapped


class DistArray:
    """A vector distributed over the PEs of a :class:`Machine`.

    Attributes
    ----------
    chunks:
        List of per-PE one-dimensional NumPy arrays.  ``chunks[i]``
        lives in PE ``i``'s memory; reading this property from the
        driver fetches resident chunks out of the backend (cheap for
        ``sim``, a real transfer for ``mp``) -- algorithms should prefer
        the resident map methods and :meth:`sizes`, which never move
        chunk data.  Cross-PE access requires machine collectives.
    """

    def __init__(
        self,
        machine: Machine,
        chunks: Sequence[np.ndarray] | None = None,
        *,
        ref: ChunkRef | None = None,
        sizes: Sequence[int] | None = None,
        dtype=None,
        resident: bool = False,
    ):
        self.machine = machine
        if (chunks is None) == (ref is None):
            raise ValueError("exactly one of chunks/ref is required")
        if chunks is not None:
            if len(chunks) != machine.p:
                raise ValueError(
                    f"need one chunk per PE: got {len(chunks)} chunks for p={machine.p}"
                )
            arr = [np.asarray(c) for c in chunks]
            for i, c in enumerate(arr):
                if c.ndim != 1:
                    raise ValueError(
                        f"chunk {i} must be one-dimensional, got shape {c.shape}"
                    )
            self._chunks: list[np.ndarray] | None = arr
            self._sizes = np.array([c.size for c in arr], dtype=np.int64)
            self._dtype = arr[0].dtype
            self._ref: ChunkRef | None = None
            if resident:
                self._ensure_ref()
        else:
            if sizes is None:
                raise ValueError("resident construction requires sizes")
            self._chunks = None
            self._sizes = np.asarray(sizes, dtype=np.int64)
            self._dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float64)
            self._ref = ref

    # ------------------------------------------------------------------
    # Residency plumbing
    # ------------------------------------------------------------------
    def _ensure_ref(self) -> ChunkRef:
        """Pin the chunks in the backend (no-op if already resident)."""
        if self._ref is None:
            self._ref = self.machine.backend.put_chunks(self._chunks)
        return self._ref

    @property
    def chunks(self) -> list[np.ndarray]:
        if self._chunks is None:
            self._chunks = list(self.machine.backend.get_chunks(self._ref))
            if self._chunks and hasattr(self._chunks[0], "dtype"):
                self._dtype = self._chunks[0].dtype
        return self._chunks

    def _map_resident(
        self,
        fn: Callable,
        n_out: int = 0,
        args: Sequence[tuple] | None = None,
        collect: tuple | None = None,
    ) -> tuple[list[ChunkRef], list, list | None]:
        """Raw resident map (no charging -- call sites charge in their
        own order so modeled time is schedule-exact)."""
        return self.machine.backend.map_resident(
            fn, [self._ensure_ref()], n_out, args, collect
        )

    def _wrap(self, ref: ChunkRef, sizes, dtype=None) -> "DistArray":
        return DistArray(
            self.machine, ref=ref, sizes=sizes,
            dtype=self._dtype if dtype is None else dtype,
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_global(cls, machine: Machine, data: np.ndarray) -> "DistArray":
        """Split ``data`` into ``p`` nearly equal contiguous chunks.

        This models the paper's input convention: each PE holds
        ``O(n/p)`` elements.  No communication is charged -- the input is
        assumed to already reside on the PEs (real backends pin the
        chunks into their workers here, before any timer starts).
        """
        data = np.asarray(data)
        return cls(
            machine,
            np.array_split(data, machine.p),
            resident=machine.backend.is_real,
        )

    @classmethod
    def generate(
        cls, machine: Machine, make_chunk: Callable[[int, np.random.Generator], np.ndarray]
    ) -> "DistArray":
        """Build per-PE chunks with each PE's own RNG stream.

        ``make_chunk(rank, rng)`` must return the local chunk for ``rank``.
        """
        return cls(
            machine,
            [make_chunk(i, machine.rngs[i]) for i in range(machine.p)],
            resident=machine.backend.is_real,
        )

    @classmethod
    def empty_like(cls, other: "DistArray") -> "DistArray":
        return cls(
            other.machine,
            [np.empty(0, dtype=other._dtype) for _ in range(other.machine.p)],
        )

    # ------------------------------------------------------------------
    # Inspection (driver-side; used by tests and result assembly, not by
    # the distributed algorithms themselves)
    # ------------------------------------------------------------------
    def sizes(self) -> np.ndarray:
        """Per-PE chunk lengths (a local quantity on each PE; tracked
        driver-side, so no chunk data moves)."""
        return self._sizes.copy()

    @property
    def global_size(self) -> int:
        return int(self._sizes.sum())

    def concat(self) -> np.ndarray:
        """Concatenate all chunks in rank order (test/driver-side oracle)."""
        if not self.chunks:
            return np.empty(0, dtype=self._dtype)
        return np.concatenate(self.chunks)

    @property
    def dtype(self):
        return self._dtype

    def __len__(self) -> int:
        return self.global_size

    # ------------------------------------------------------------------
    # Resident transforms: the callback runs where the chunk lives
    # ------------------------------------------------------------------
    def map_chunks(self, fn: Callable[[int, np.ndarray], np.ndarray], ops_per_elem: float = 1.0) -> "DistArray":
        """Apply ``fn(rank, chunk)`` on every PE, charging local work.

        On a real backend (``Machine(backend="mp")``) the per-PE
        applications run in the worker processes -- genuinely in
        parallel, with the chunks staying resident -- provided ``fn`` is
        picklable; otherwise they fall back to the driver process.
        """
        refs, metas, _ = self._map_resident(_measured_wrapper(fn), n_out=1)
        self.machine.charge_ops(self._sizes.astype(np.float64) * ops_per_elem)
        return DistArray(
            self.machine, ref=refs[0],
            sizes=[m[0] for m in metas], dtype=np.dtype(metas[0][1]),
        )

    def sort_local(self) -> "DistArray":
        """Sort each chunk locally (charges ``m log m`` per PE)."""
        sizes = self._sizes.astype(np.float64)
        self.machine.charge_ops(sizes * np.log2(np.maximum(sizes, 2.0)))
        refs, _, _ = self._map_resident(_sort_chunk, n_out=1)
        return self._wrap(refs[0], self._sizes)

    def negate(self) -> "DistArray":
        """Elementwise negation, in place in the workers (free in the
        cost model, like the sign flips the selection duals perform)."""
        refs, _, _ = self._map_resident(_negate_chunk, n_out=1)
        return self._wrap(refs[0], self._sizes)

    def map_values(
        self, fn: Callable, args: Sequence[tuple] | None = None
    ) -> list:
        """Apply ``fn(rank, chunk, *args[rank])`` on every PE and return
        only the per-PE values (no new chunks; nothing charged -- the
        call site charges its own op count)."""
        _, values, _ = self._map_resident(fn, n_out=0, args=args)
        return values

    def map_collect(
        self,
        fn: Callable,
        args: Sequence[tuple] | None = None,
        *,
        op: str | Callable | None = None,
    ) -> tuple[list, list]:
        """Resident map with the value collective fused into the same
        backend round trip.

        Returns ``(values, collected)``: without ``op`` the collected
        entry is the rank-ordered value list (allgather semantics), with
        ``op`` the replicated reduction.  The collective's modeled cost
        and metering are charged through the machine exactly as if
        :meth:`Machine.allgather`/:meth:`Machine.allreduce` had been
        called on ``values``, so both backends report identical models.
        """
        collect = ("allgather",) if op is None else ("allreduce", op)
        _, values, collected = self._map_resident(fn, n_out=0, args=args, collect=collect)
        if op is None:
            self.machine._meter_allgather(values)
        else:
            self.machine._meter_allreduce(values)
        return values, collected

    def bernoulli_sample_local(self, rho: float) -> list:
        """Per-PE Bernoulli(rho) samples, drawn and extracted where the
        chunks live: each PE draws from its counter-addressed stream
        (:mod:`repro.machine.ctrrng`), so only the tiny draw address
        travels out and only the sampled values travel back.  Charges
        the paper's ``O(rho * n/p)`` expected sampling work."""
        addr = self.machine.draw_addr()
        self.machine.charge_ops([max(1.0, rho * s) for s in self._sizes])
        return self.map_values(
            _bernoulli_take, args=[(addr, rho)] * self.machine.p
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DistArray(p={self.machine.p}, n={self.global_size}, dtype={self.dtype})"
