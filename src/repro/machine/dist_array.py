"""Distributed arrays: one NumPy chunk per PE.

:class:`DistArray` is the input/output container of every algorithm in
this package.  It is deliberately thin -- a list of per-PE chunks plus
convenience constructors -- because the algorithms themselves must only
touch a chunk through its owning PE (all cross-PE flow goes through
:class:`repro.machine.Machine` collectives).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from .comm import Machine

__all__ = ["DistArray"]


def _sort_chunk(rank: int, chunk: np.ndarray) -> np.ndarray:
    """Module-level so real backends can ship it to worker processes."""
    return np.sort(chunk)


class DistArray:
    """A vector distributed over the PEs of a :class:`Machine`.

    Attributes
    ----------
    chunks:
        List of per-PE one-dimensional NumPy arrays.  ``chunks[i]`` lives
        in PE ``i``'s memory; cross-PE access requires communication.
    """

    def __init__(self, machine: Machine, chunks: Sequence[np.ndarray]):
        if len(chunks) != machine.p:
            raise ValueError(
                f"need one chunk per PE: got {len(chunks)} chunks for p={machine.p}"
            )
        self.machine = machine
        self.chunks: list[np.ndarray] = [np.asarray(c) for c in chunks]
        for i, c in enumerate(self.chunks):
            if c.ndim != 1:
                raise ValueError(f"chunk {i} must be one-dimensional, got shape {c.shape}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_global(cls, machine: Machine, data: np.ndarray) -> "DistArray":
        """Split ``data`` into ``p`` nearly equal contiguous chunks.

        This models the paper's input convention: each PE holds
        ``O(n/p)`` elements.  No communication is charged -- the input is
        assumed to already reside on the PEs.
        """
        data = np.asarray(data)
        return cls(machine, np.array_split(data, machine.p))

    @classmethod
    def generate(
        cls, machine: Machine, make_chunk: Callable[[int, np.random.Generator], np.ndarray]
    ) -> "DistArray":
        """Build per-PE chunks with each PE's own RNG stream.

        ``make_chunk(rank, rng)`` must return the local chunk for ``rank``.
        """
        return cls(
            machine,
            [make_chunk(i, machine.rngs[i]) for i in range(machine.p)],
        )

    @classmethod
    def empty_like(cls, other: "DistArray") -> "DistArray":
        dtype = other.chunks[0].dtype if other.chunks else np.float64
        return cls(other.machine, [np.empty(0, dtype=dtype) for _ in range(other.machine.p)])

    # ------------------------------------------------------------------
    # Inspection (driver-side; used by tests and result assembly, not by
    # the distributed algorithms themselves)
    # ------------------------------------------------------------------
    def sizes(self) -> np.ndarray:
        """Per-PE chunk lengths (a local quantity on each PE)."""
        return np.array([len(c) for c in self.chunks], dtype=np.int64)

    @property
    def global_size(self) -> int:
        return int(self.sizes().sum())

    def concat(self) -> np.ndarray:
        """Concatenate all chunks in rank order (test/driver-side oracle)."""
        if not self.chunks:
            return np.empty(0)
        return np.concatenate(self.chunks)

    @property
    def dtype(self):
        return self.chunks[0].dtype

    def __len__(self) -> int:
        return self.global_size

    # ------------------------------------------------------------------
    # Local transforms
    # ------------------------------------------------------------------
    def map_chunks(self, fn: Callable[[int, np.ndarray], np.ndarray], ops_per_elem: float = 1.0) -> "DistArray":
        """Apply ``fn(rank, chunk)`` on every PE, charging local work.

        On a real backend (``Machine(backend="mp")``) the per-PE
        applications run in the worker processes -- genuinely in
        parallel -- provided ``fn`` is picklable; otherwise they fall
        back to the driver process.
        """
        out = self.machine.backend.map(fn, self.chunks)
        self.machine.charge_ops(self.sizes().astype(np.float64) * ops_per_elem)
        return DistArray(self.machine, out)

    def sort_local(self) -> "DistArray":
        """Sort each chunk locally (charges ``m log m`` per PE)."""
        sizes = self.sizes().astype(np.float64)
        self.machine.charge_ops(sizes * np.log2(np.maximum(sizes, 2.0)))
        return DistArray(self.machine, self.machine.backend.map(_sort_chunk, self.chunks))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DistArray(p={self.machine.p}, n={self.global_size}, dtype={self.dtype})"
