"""Multisequence selection from locally sorted input (Appendix A, Alg. 9).

Each PE holds a locally *sorted* sequence; we must find the globally
k-th smallest element.  The algorithm is distributed quickselect:

1. pick a global element uniformly at random as pivot ``v`` (the same
   random rank is drawn on every PE from the synchronized stream; a
   prefix sum over window sizes locates its owner, which shares ``v``),
2. every PE finds its split position by *binary search* (sortedness
   replaces the linear partition of unsorted quickselect),
3. a sum-reduction of the split positions decides the recursion side.

Expected ``O((alpha log p + log min(n/p, k)) * log min(kp, n))``, i.e.
``O(alpha log^2 kp)`` (Theorem 16).  The search can be restricted to the
first ``k`` elements of every local sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.ordering import TOP
from ..common.validation import check_rank
from ..machine import Machine
from .accessors import SortedSequence, as_sorted_seq

__all__ = ["ms_select", "ms_select_with_cuts", "MsSelectStats"]


@dataclass(frozen=True)
class MsSelectStats:
    """Diagnostics of one msSelect run (latency is rounds-dominated)."""

    value: object
    rounds: int
    comm_rounds: int


def ms_select(
    machine: Machine,
    seqs,
    k: int,
    *,
    base_case: int = 64,
    max_rounds: int = 200,
    return_stats: bool = False,
):
    """Globally k-th smallest element of ``p`` locally sorted sequences.

    Parameters
    ----------
    seqs:
        One :class:`SortedSequence` (or ascending ``np.ndarray``) per PE.
    k:
        Target rank, 1-based.
    base_case:
        Remaining window size below which PE 0 finishes sequentially.
    """
    seqs = [as_sorted_seq(s) for s in seqs]
    if len(seqs) != machine.p:
        raise ValueError(f"need one sequence per PE (p={machine.p}, got {len(seqs)})")
    n = int(machine.allreduce([len(s) for s in seqs], op="sum")[0])
    k = check_rank(k, n)

    # windows of global candidate ranks per PE; restrict to first k
    lo = [0] * machine.p
    hi = [min(len(s), k) for s in seqs]
    rounds = 0
    comm_rounds = 1  # the size all-reduce above
    # replicated pivot draws from one counter-addressed stream per call
    shared = machine.draw_addr().shared()

    while True:
        sizes = [hi[i] - lo[i] for i in range(machine.p)]
        total = sum(sizes)  # driver-side mirror of the tracked windows
        if total <= max(base_case, 1) or rounds >= max_rounds:
            value = _sorted_base_case(machine, seqs, lo, hi, k)
            comm_rounds += 2
            if return_stats:
                return MsSelectStats(value, rounds, comm_rounds)
            return value

        # ------------------------------------------------------------
        # Pivot: the g-th element of the remaining windows, g uniform.
        # The draw is replicated (counter-addressed shared stream); the
        # prefix sum over window sizes identifies the owner PE, which
        # broadcasts v.
        # ------------------------------------------------------------
        g = int(shared.integers(total))
        offsets = machine.exscan(sizes, op="sum")
        candidates = []
        for i in range(machine.p):
            if offsets[i] <= g < offsets[i] + sizes[i]:
                v_local = seqs[i].item(lo[i] + (g - offsets[i]))
                machine.charge_ops_one(i, np.log2(max(sizes[i], 2)))
                candidates.append(v_local)
            else:
                candidates.append(TOP)
        v = machine.allreduce(candidates, op="min")[0]
        comm_rounds += 2

        # ------------------------------------------------------------
        # Binary-search split of every window at v: j = #(< v), e = #(== v)
        # ------------------------------------------------------------
        j = np.zeros(machine.p, dtype=np.int64)
        e = np.zeros(machine.p, dtype=np.int64)
        for i in range(machine.p):
            le = int(np.clip(seqs[i].count_le(v), lo[i], hi[i])) - lo[i]
            # count strictly-below via <=-count of the predecessor probe:
            # for floats we can search with side='left' semantics through
            # count_le on a slightly smaller probe; do it exactly instead:
            lt = _count_lt(seqs[i], v, lo[i], hi[i])
            j[i] = lt
            e[i] = le - lt
            machine.charge_ops_one(i, np.log2(max(sizes[i], 2)))
        counts = machine.allreduce(
            [np.array([j[i], e[i]], dtype=np.int64) for i in range(machine.p)], op="sum"
        )[0]
        n_lt, n_eq = int(counts[0]), int(counts[1])
        comm_rounds += 1

        if n_lt >= k:
            hi = [lo[i] + int(j[i]) for i in range(machine.p)]
        elif n_lt + n_eq >= k:
            if return_stats:
                return MsSelectStats(v, rounds + 1, comm_rounds)
            return v
        else:
            lo = [lo[i] + int(j[i] + e[i]) for i in range(machine.p)]
            k -= n_lt + n_eq
        rounds += 1


def _count_lt(seq: SortedSequence, v, lo: int, hi: int) -> int:
    """Elements strictly below ``v`` inside window ``[lo, hi)``."""
    arr = getattr(seq, "arr", None)
    if arr is not None:
        return int(np.clip(np.searchsorted(arr, v, side="left"), lo, hi)) - lo
    # generic adapter: binary search on item() for the left boundary
    a, b = lo, hi
    while a < b:
        m = (a + b) // 2
        if seq.item(m) < v:
            a = m + 1
        else:
            b = m
    return a - lo


def _sorted_base_case(machine: Machine, seqs, lo, hi, k: int):
    """Gather the residual windows on PE 0 and finish sequentially.

    Implemented over Python lists so it also works for tuple-valued keys
    (the bulk priority queue selects over ``(score, uid)`` pairs).
    """
    windows = []
    for i in range(machine.p):
        w = [seqs[i].item(x) for x in range(lo[i], hi[i])]
        windows.append(w)
        machine.charge_ops_one(i, max(1, hi[i] - lo[i]))
    gathered = machine.gather(windows, root=0)[0]
    rest = sorted(x for w in gathered for x in w)
    machine.charge_ops_one(0, len(rest) * np.log2(max(len(rest), 2)))
    value = rest[min(k, len(rest)) - 1]
    value = value.item() if hasattr(value, "item") else value
    return machine.broadcast(value, root=0)[0]


# ----------------------------------------------------------------------
# SPMD generator form (resident execution inside backend workers)
# ----------------------------------------------------------------------
#
# The bulk priority queues keep their search trees resident in the
# execution backend; their rank selection therefore runs *where the
# trees live* as one generator SPMD step (``Backend.run_spmd``).  The
# generators below mirror the driver algorithms above collective for
# collective, but each rank sees only its own sequence; embedded
# collectives are ``yield``ed, randomness comes from counter-addressed
# streams the calling kernel derives in place
# (:mod:`repro.machine.ctrrng` -- no state crosses the wire), and every
# charge the driver version would have made is appended to ``log`` for
# :meth:`Machine.replay_charges`.

def ms_select_gen(rank, p, seq, k, shared_rng, log, *, base_case=64, max_rounds=200):
    """SPMD generator: globally k-th smallest over per-rank sorted views.

    ``seq`` is this rank's :class:`SortedSequence`-style view;
    ``shared_rng`` a replicated generator the caller derives from a
    counter draw address (``addr.shared(...)`` -- every rank constructs
    the identical stream).  Yields SPMD collectives and returns
    ``(value, rounds)``.
    """
    from ..machine.metrics import payload_words

    totals = yield ("allreduce", len(seq), "sum")
    log.append(("allreduce", 1))
    n = int(totals)
    k = check_rank(k, n)

    lo, hi = 0, min(len(seq), k)
    rounds = 0
    while True:
        size = hi - lo
        total, offset = yield ("allreduce_exscan", size, "sum", 0)
        log.append(("allreduce_exscan", 1))
        if total <= max(base_case, 1) or rounds >= max_rounds:
            window = [seq.item(x) for x in range(lo, hi)]
            log.append(("ops", max(1, size)))
            gathered = yield ("allgather", window)
            log.append(("allgather", payload_words(window)))
            rest = sorted(x for w in gathered for x in w)
            log.append(("ops", len(rest) * np.log2(max(len(rest), 2))))
            value = rest[min(k, len(rest)) - 1]
            value = value.item() if hasattr(value, "item") else value
            return value, rounds

        # pivot: the g-th element of the remaining windows, g replicated
        g = int(shared_rng.integers(total))
        if offset <= g < offset + size:
            candidate = seq.item(lo + (g - offset))
            log.append(("ops", np.log2(max(size, 2))))
        else:
            candidate = TOP
            log.append(("ops", 0.0))
        v = yield ("allreduce", candidate, "min")
        log.append(("allreduce", payload_words(candidate)))

        le = int(np.clip(seq.count_le(v), lo, hi)) - lo
        lt = _count_lt(seq, v, lo, hi)
        log.append(("ops", np.log2(max(size, 2))))
        counts = yield (
            "allreduce", np.array([lt, le - lt], dtype=np.int64), "sum"
        )
        log.append(("allreduce", 2))
        n_lt, n_eq = int(counts[0]), int(counts[1])

        if n_lt >= k:
            hi = lo + lt
        elif n_lt + n_eq >= k:
            return v, rounds + 1
        else:
            lo = lo + lt + (le - lt)
            k -= n_lt + n_eq
        rounds += 1


def ms_select_with_cuts_gen(rank, p, seq, k, shared_rng, log, **kwargs):
    """SPMD generator: k-th smallest plus this rank's exact cut.

    Mirrors :func:`ms_select_with_cuts` -- the tie quota is granted in
    PE order through one fused in-worker ``allreduce_exscan``.  Returns
    ``(value, cut, rounds)`` with ``sum(cut) == k`` across ranks.
    """
    value, rounds = yield from ms_select_gen(
        rank, p, seq, k, shared_rng, log, **kwargs
    )
    n_le = seq.count_le(value)
    n_lt = _count_lt(seq, value, 0, len(seq))
    eq = n_le - n_lt
    log.append(("ops", np.log2(max(len(seq), 2))))
    totals, prefix = yield (
        "allreduce_exscan",
        np.array([n_lt, eq], dtype=np.int64),
        "sum",
        np.zeros(2, dtype=np.int64),
    )
    log.append(("allreduce_exscan", 2))
    quota = k - int(totals[0])
    keep_eq = int(np.clip(quota - int(prefix[1]), 0, eq))
    return value, n_lt + keep_eq, rounds


def ms_select_with_cuts(
    machine: Machine, seqs, k: int, **kwargs
) -> tuple[object, list[int]]:
    """k-th smallest plus exact per-PE selection counts.

    Returns ``(value, cuts)`` where ``cuts[i]`` is the number of elements
    PE ``i`` contributes to the global k smallest; ``sum(cuts) == k``
    exactly (duplicate thresshold elements are granted in PE order via a
    prefix sum, as in Section 4's output convention).
    """
    seqs = [as_sorted_seq(s) for s in seqs]
    value = ms_select(machine, seqs, k, **kwargs)
    lt = []
    eq = []
    for i in range(machine.p):
        n_le = seqs[i].count_le(value)
        n_lt = _count_lt(seqs[i], value, 0, len(seqs[i]))
        lt.append(n_lt)
        eq.append(n_le - n_lt)
        machine.charge_ops_one(i, np.log2(max(len(seqs[i]), 2)))
    # fused: strict-below total and tie prefix share one schedule
    quota, eq_before = machine.tie_grant_prefix(lt, eq, k)
    cuts = []
    for i in range(machine.p):
        keep_eq = int(np.clip(quota - eq_before[i], 0, eq[i]))
        cuts.append(lt[i] + keep_eq)
    return value, cuts
