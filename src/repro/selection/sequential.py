"""Sequential selection: quickselect and Floyd-Rivest.

These serve three roles in the reproduction:

1. the *base case* of the distributed algorithms (once the recursion has
   shrunk the problem onto one PE, the driver finishes locally),
2. the pivot-selection machinery (Floyd-Rivest picks two pivots from a
   sorted sample, the same scheme Algorithm 1 distributes), and
3. the oracle used by tests (compare against a full sort).

Both are implemented with vectorized NumPy partitioning (no
``np.partition`` -- the partition counts are exactly the quantities the
distributed algorithm communicates, so we compute them explicitly).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["quickselect", "floyd_rivest_select", "kth_smallest", "fr_pivots"]


def kth_smallest(data: np.ndarray, k: int) -> float:
    """The k-th smallest element (1-based) of ``data``.

    Dispatches to Floyd-Rivest for large inputs, quickselect otherwise.
    """
    data = np.asarray(data)
    if not 1 <= k <= data.size:
        raise ValueError(f"k must satisfy 1 <= k <= {data.size}, got {k}")
    if data.size >= 4096:
        return floyd_rivest_select(data, k)
    return quickselect(data, k)


def quickselect(data: np.ndarray, k: int, rng: np.random.Generator | None = None) -> float:
    """Classic quickselect (Hoare's FIND) with random pivots.

    Expected linear work; the input array is not modified.
    """
    data = np.asarray(data)
    n = data.size
    if not 1 <= k <= n:
        raise ValueError(f"k must satisfy 1 <= k <= {n}, got {k}")
    rng = rng if rng is not None else np.random.default_rng(0x5E1EC7)
    work = data
    while work.size > 64:
        pivot = work[int(rng.integers(work.size))]
        lt = work < pivot
        n_lt = int(lt.sum())
        if k <= n_lt:
            work = work[lt]
            continue
        eq = work == pivot
        n_eq = int(eq.sum())
        if k <= n_lt + n_eq:
            return pivot.item() if hasattr(pivot, "item") else pivot
        work = work[~lt & ~eq]
        k -= n_lt + n_eq
    return np.sort(work)[k - 1].item()


def fr_pivots(sample: np.ndarray, k: int, n: int, delta_exp: float = 5.0 / 6.0) -> tuple:
    """Floyd-Rivest pivot pair from a *sorted* sample.

    Pivots are the sample elements with ranks ``k * |S| / n +- Delta``
    where ``Delta = |S|^delta_exp`` (the paper uses ``Delta =
    p^(1/4+delta)`` with sample size ``Theta(sqrt(p))``, i.e.
    ``Delta ~ |S|^(1/2+2*delta)``; ``delta = 1/6`` gives exponent 5/6).

    Returns ``(lo_pivot, hi_pivot)`` with ``lo_pivot <= hi_pivot``.
    """
    s = sample.size
    if s == 0:
        raise ValueError("cannot pick pivots from an empty sample")
    center = k * s / max(n, 1)
    delta = max(1.0, s**delta_exp)
    lo = int(np.clip(math.floor(center - delta), 0, s - 1))
    hi = int(np.clip(math.ceil(center + delta), 0, s - 1))
    return sample[lo], sample[hi]


def floyd_rivest_select(
    data: np.ndarray, k: int, rng: np.random.Generator | None = None
) -> float:
    """Floyd-Rivest selection [16]: two pivots from a small sorted sample.

    Each round samples ``O(n^(2/3))`` elements, sorts them, and uses the
    two pivots around the target rank to discard all but an expected
    ``O(n^(2/3))`` fraction of the data, giving ``n + min(n, k) + o(n)``
    expected comparisons.
    """
    data = np.asarray(data)
    n = data.size
    if not 1 <= k <= n:
        raise ValueError(f"k must satisfy 1 <= k <= {n}, got {k}")
    rng = rng if rng is not None else np.random.default_rng(0xF10D)
    work = data
    while work.size > 1024:
        m = work.size
        s = max(16, int(m ** (2.0 / 3.0)))
        sample = np.sort(work[rng.integers(0, m, size=s)])
        lo_p, hi_p = fr_pivots(sample, k, m)
        below = work < lo_p
        n_below = int(below.sum())
        mid = (work >= lo_p) & (work <= hi_p)
        n_mid = int(mid.sum())
        if k <= n_below:
            work = work[below]
        elif k <= n_below + n_mid:
            if lo_p == hi_p:
                return lo_p.item() if hasattr(lo_p, "item") else lo_p
            work = work[mid]
            k -= n_below
        else:
            work = work[~below & ~mid]
            k -= n_below + n_mid
    return np.sort(work)[k - 1].item()
