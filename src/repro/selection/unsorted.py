"""Distributed selection from unsorted input (Section 4.1, Algorithm 1).

The communication-efficient Floyd-Rivest variant: in every level of
recursion each PE draws a *Bernoulli* sample of its local slice with
probability ``sqrt(p) / n`` (no random data redistribution is needed --
Theorem 1's key observation), the union of samples (expected size
``sqrt(p)``) is shared and sorted, the two pivots around the target rank
are picked, and every PE partitions its slice into

    ``a < lo_pivot <= b <= hi_pivot < c``.

A two-word all-reduction yields the global part sizes and the recursion
continues in the part containing rank ``k``.

Expected running time ``O(n/p + beta * min(sqrt(p) log_p n, n/p)
+ alpha * log n)`` (Theorem 1); for constant alpha/beta this is
``O(n/p + log p)`` (Corollary 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.sampling import bernoulli_sample
from ..common.validation import check_rank
from ..machine import DistArray, Machine

__all__ = ["select_kth", "select_topk_smallest", "select_topk_largest", "SelectionStats"]


@dataclass(frozen=True)
class SelectionStats:
    """Diagnostics of one distributed selection run."""

    value: float
    rounds: int
    sample_total: int
    base_case_size: int


def select_kth(
    machine: Machine,
    data: DistArray,
    k: int,
    *,
    sample_factor: float = 1.0,
    base_case: int | None = None,
    max_rounds: int = 64,
    return_stats: bool = False,
):
    """The globally k-th smallest element (1-based rank) of ``data``.

    Parameters
    ----------
    machine:
        The simulated machine ``data`` lives on.
    data:
        Distributed input; chunks need not be sorted or balanced.
    k:
        Target rank, ``1 <= k <= len(data)``.
    sample_factor:
        Multiplies the ``sqrt(p)/n`` Bernoulli rate (ablation knob).
    base_case:
        Remaining-size threshold below which the problem is gathered to
        PE 0 and finished sequentially.  Defaults to
        ``max(64, 4 * sqrt(p))``.
    max_rounds:
        Safety bound on recursion depth; reaching it triggers the exact
        gather fallback (cannot affect correctness, only cost).
    return_stats:
        If true, return :class:`SelectionStats` instead of the bare value.

    Returns
    -------
    The k-th smallest value (a Python scalar), or stats including it.
    """
    p = machine.p
    n0 = data.global_size
    k = check_rank(k, n0)
    if base_case is None:
        base_case = int(max(64, 4 * np.sqrt(p)))

    chunks = [np.asarray(c) for c in data.chunks]
    rounds = 0
    sample_total = 0
    # One all-reduction establishes the global size; afterwards every PE
    # updates n locally from the part counts it already received, so the
    # recursion pays a single collective per level instead of two.
    sizes = np.array([c.size for c in chunks], dtype=np.int64)
    n = int(machine.allreduce(list(sizes), op="sum")[0])
    while True:
        sizes = np.array([c.size for c in chunks], dtype=np.int64)
        if n <= base_case or rounds >= max_rounds:
            value = _gather_base_case(machine, chunks, k)
            if return_stats:
                return SelectionStats(value, rounds, sample_total, n)
            return value

        # Bernoulli sampling at rate sqrt(p)/n on every PE (Theorem 1)
        rho = min(1.0, sample_factor * np.sqrt(p) / n)
        local_samples = [
            bernoulli_sample(machine.rngs[i], chunks[i], rho) for i in range(p)
        ]
        machine.charge_ops([max(1.0, rho * s) for s in sizes])

        # Share the sample: expected O(sqrt(p)) words per PE, O(alpha log p)
        # startups (the "fast inefficient sorting" of Section 2 sorts the
        # replicated sample locally after an all-gather).
        gathered = machine.allgather(local_samples)[0]
        sample = np.concatenate([s for s in gathered if s.size]) if any(
            s.size for s in gathered
        ) else np.empty(0, dtype=chunks[0].dtype if chunks else np.float64)
        if sample.size == 0:
            rounds += 1
            continue
        sample = np.sort(sample)
        machine.charge_ops(sample.size * np.log2(max(sample.size, 2)))
        sample_total += int(sample.size)

        from .sequential import fr_pivots

        lo_p, hi_p = fr_pivots(sample, k, n)

        # Local three-way partition (one pass over the slice)
        n_lo = np.zeros(p, dtype=np.int64)
        n_mid = np.zeros(p, dtype=np.int64)
        parts_lo, parts_mid, parts_hi = [], [], []
        for i in range(p):
            c = chunks[i]
            below = c < lo_p
            mid = (c >= lo_p) & (c <= hi_p)
            parts_lo.append(c[below])
            parts_mid.append(c[mid])
            parts_hi.append(c[~below & ~mid])
            n_lo[i] = parts_lo[-1].size
            n_mid[i] = parts_mid[-1].size
        machine.charge_ops(sizes.astype(np.float64))

        # One vector all-reduction delivers both counts (na, nb)
        counts = machine.allreduce(
            [np.array([n_lo[i], n_mid[i]], dtype=np.int64) for i in range(p)],
            op="sum",
        )[0]
        na, nb = int(counts[0]), int(counts[1])

        if na >= k:
            chunks = parts_lo
            n = na
        elif na + nb < k:
            chunks = parts_hi
            k -= na + nb
            n = n - na - nb
        else:
            if lo_p == hi_p:
                # rank k falls inside a run of duplicates of the pivot
                value = lo_p.item() if hasattr(lo_p, "item") else lo_p
                if return_stats:
                    return SelectionStats(value, rounds + 1, sample_total, 0)
                return value
            chunks = parts_mid
            k -= na
            n = nb
        rounds += 1


def _gather_base_case(machine: Machine, chunks: list[np.ndarray], k: int):
    """Gather the residual problem to PE 0, solve it, broadcast the result."""
    gathered = machine.gather(chunks, root=0)[0]
    rest = np.concatenate([c for c in gathered if c.size])
    rest_sorted = np.sort(rest)
    machine.charge_ops_one(0, rest.size * np.log2(max(rest.size, 2)))
    value = rest_sorted[min(k, rest.size) - 1].item()
    return machine.broadcast(value, root=0)[0]


def select_topk_smallest(
    machine: Machine, data: DistArray, k: int, **kwargs
) -> tuple[DistArray, float]:
    """Extract the k globally smallest elements, exactly.

    Runs :func:`select_kth` to find the threshold, then cuts locally:
    all elements strictly below the threshold are selected, and the
    remaining quota of threshold-equal elements is granted in PE order
    (a prefix-sum decides how many duplicates each PE keeps), so the
    output size is exactly ``k`` regardless of ties.

    Returns ``(selected, threshold)``; ``selected`` stays distributed --
    possibly unevenly, which Section 9's redistribution can fix.
    """
    n = data.global_size
    k = check_rank(k, n)
    threshold = select_kth(machine, data, k, **kwargs)
    p = machine.p
    below_counts = []
    equal_counts = []
    for c in data.chunks:
        below_counts.append(int((c < threshold).sum()))
        equal_counts.append(int((c == threshold).sum()))
    machine.charge_ops(data.sizes().astype(np.float64))
    # fused collective: below-threshold total and tie prefix in one schedule
    quota, eq_before = machine.tie_grant_prefix(below_counts, equal_counts, k)
    out = []
    for i, c in enumerate(data.chunks):
        keep_eq = int(np.clip(quota - eq_before[i], 0, equal_counts[i]))
        sel = np.concatenate([c[c < threshold], c[c == threshold][:keep_eq]])
        out.append(sel)
    return DistArray(machine, out), threshold


def select_topk_largest(
    machine: Machine, data: DistArray, k: int, **kwargs
) -> tuple[DistArray, float]:
    """Extract the k globally largest elements, exactly (dual of
    :func:`select_topk_smallest` via negation)."""
    negated = DistArray(machine, [-np.asarray(c) for c in data.chunks])
    sel, thr = select_topk_smallest(machine, negated, k, **kwargs)
    return DistArray(machine, [-c for c in sel.chunks]), -thr
