"""Distributed selection from unsorted input (Section 4.1, Algorithm 1).

The communication-efficient Floyd-Rivest variant: in every level of
recursion each PE draws a *Bernoulli* sample of its local slice with
probability ``sqrt(p) / n`` (no random data redistribution is needed --
Theorem 1's key observation), the union of samples (expected size
``sqrt(p)``) is shared and sorted, the two pivots around the target rank
are picked, and every PE partitions its slice into

    ``a < lo_pivot <= b <= hi_pivot < c``.

A two-word all-reduction yields the global part sizes and the recursion
continues in the part containing rank ``k``.

Execution is resident-chunk SPMD: the slices stay pinned in the
backend's workers for the whole recursion.  Sampling draws *where the
data lives* from the counter-addressed rng (:mod:`repro.machine.ctrrng`
-- only a tiny draw address crosses the wire, never index sets or
generator state), the sample union rides an in-worker allgather, and
the three-way partition runs in the same SPMD step with its two-word
counts fused into the same round trip as an in-worker all-reduction --
per level, exactly one backend round trip and zero chunk movement.

Expected running time ``O(n/p + beta * min(sqrt(p) log_p n, n/p)
+ alpha * log n)`` (Theorem 1); for constant alpha/beta this is
``O(n/p + log p)`` (Corollary 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.validation import check_rank
from ..machine import DistArray, Machine

__all__ = ["select_kth", "select_topk_smallest", "select_topk_largest", "SelectionStats"]


@dataclass(frozen=True)
class SelectionStats:
    """Diagnostics of one distributed selection run."""

    value: float
    rounds: int
    sample_total: int
    base_case_size: int


# ----------------------------------------------------------------------
# Resident worker callbacks (module-level so real backends can ship them)
# ----------------------------------------------------------------------

def _selection_round_kernel(
    rank: int, chunk: np.ndarray, addr, level: int, rho: float, k: int, n: int
):
    """One full recursion level, executed where the chunk lives.

    SPMD generator: draw the Bernoulli(rho) sample *in the kernel* from
    the counter-addressed stream (``addr.local(rank, draw=level)`` --
    the same bits on every backend, with nothing but the tiny address on
    the wire), share it (in-worker allgather), pick the Floyd-Rivest
    pivots from the replicated union, three-way partition the local
    slice and combine the two-word part counts (in-worker allreduce) --
    a single backend round trip per level; the slice itself never moves.

    Returns the three part chunks plus the small value tuple
    ``(sample_words, sample_total, lo_pivot, hi_pivot, na, nb,
    n_lo, n_mid)`` the driver re-plays the cost model from
    (``sample_total == 0`` flags an empty-sample level: the parts are
    ``(chunk, empty, empty)`` and no pivots exist).
    """
    from ..common.sampling import bernoulli_sample_indices
    from ..kernels import partition3
    from ..machine.metrics import payload_words
    from .sequential import fr_pivots

    idx = bernoulli_sample_indices(addr.local(rank, draw=level), int(chunk.size), rho)
    sample = chunk.copy() if idx is None else chunk[idx]
    gathered = yield ("allgather", sample)
    sample_words = payload_words(sample)
    nonempty = [s for s in gathered if s.size]
    if not nonempty:
        empty = chunk[:0]
        return chunk, empty, empty, (sample_words, 0, None, None, 0, 0, chunk.size, 0)
    union = np.sort(np.concatenate(nonempty))
    lo_p, hi_p = fr_pivots(union, k, n)

    part_lo, part_mid, part_hi = partition3(chunk, lo_p, hi_p)
    counts = np.array([part_lo.size, part_mid.size], dtype=np.int64)
    totals = yield ("allreduce", counts, "sum")
    return part_lo, part_mid, part_hi, (
        sample_words, int(union.size), lo_p, hi_p,
        int(totals[0]), int(totals[1]), part_lo.size, part_mid.size,
    )


def _topk_cut_kernel(rank: int, chunk: np.ndarray, threshold, k: int):
    """Count + tie-grant + cut as ONE SPMD step (one backend round trip).

    The below/equal counts ride a fused in-worker ``allreduce_exscan``
    (exactly :meth:`Machine.tie_grant_prefix`'s schedule); each PE then
    grants its tie quota and cuts locally, so the selected elements
    never leave the worker.  Returns the cut chunk plus the small
    ``(below, equal, selected)`` count triple the driver re-plays the
    cost model from.
    """
    from ..kernels import topk_count, topk_cut

    n_below, n_eq = topk_count(chunk, threshold)
    counts = np.array([n_below, n_eq], dtype=np.int64)
    totals, prefix = yield (
        "allreduce_exscan", counts, "sum", np.zeros(2, dtype=np.int64)
    )
    quota = k - int(totals[0])
    keep_eq = int(np.clip(quota - int(prefix[1]), 0, n_eq))
    sel = topk_cut(chunk, threshold, keep_eq)
    return sel, (n_below, n_eq, sel.size)


def select_kth(
    machine: Machine,
    data: DistArray,
    k: int,
    *,
    sample_factor: float = 1.0,
    base_case: int | None = None,
    max_rounds: int = 64,
    return_stats: bool = False,
):
    """The globally k-th smallest element (1-based rank) of ``data``.

    Parameters
    ----------
    machine:
        The machine ``data`` lives on.
    data:
        Distributed input; chunks need not be sorted or balanced.
    k:
        Target rank, ``1 <= k <= len(data)``.
    sample_factor:
        Multiplies the ``sqrt(p)/n`` Bernoulli rate (ablation knob).
    base_case:
        Remaining-size threshold below which the problem is gathered to
        PE 0 and finished sequentially.  Defaults to
        ``max(64, 4 * sqrt(p))``.
    max_rounds:
        Safety bound on recursion depth; reaching it triggers the exact
        gather fallback (cannot affect correctness, only cost).
    return_stats:
        If true, return :class:`SelectionStats` instead of the bare value.

    Returns
    -------
    The k-th smallest value (a Python scalar), or stats including it.
    """
    p = machine.p
    n0 = data.global_size
    k = check_rank(k, n0)
    if base_case is None:
        base_case = int(max(64, 4 * np.sqrt(p)))

    cur = data
    sizes = data.sizes()
    rounds = 0
    sample_total = 0
    # one draw address for the whole recursion; each level subdivides it
    # via its ``draw=level`` slot, so the number of levels (which varies
    # with the data) never perturbs any later caller's draws
    addr = machine.draw_addr()
    # One all-reduction establishes the global size; afterwards every PE
    # updates n locally from the part counts it already received, so the
    # recursion pays a single collective per level instead of two.
    n = int(machine.allreduce(list(sizes), op="sum")[0])
    while True:
        if n <= base_case or rounds >= max_rounds:
            value = _gather_base_case(machine, cur, k)
            if return_stats:
                return SelectionStats(value, rounds, sample_total, n)
            return value

        # Bernoulli sampling at rate sqrt(p)/n on every PE (Theorem 1).
        # The index draws happen where the data lives, addressed by
        # counter (:mod:`repro.machine.ctrrng`) -- the whole level
        # (sampling, the sample-union allgather (expected O(sqrt(p))
        # words per PE, O(alpha log p) startups; the "fast inefficient
        # sorting" of Section 2 sorts the replicated union locally),
        # pivot picking, the three-way partition and the two-word count
        # all-reduction) runs inside the workers as ONE SPMD step.
        rho = min(1.0, sample_factor * np.sqrt(p) / n)
        machine.charge_ops([max(1.0, rho * s) for s in sizes])
        part_refs, vals = machine.backend.run_spmd(
            _selection_round_kernel,
            [cur._ensure_ref()],
            n_out=3,
            args=[(addr, rounds, rho, k, n)] * p,
        )
        # re-play the model from the small returned values, in the same
        # order a step-by-step driver would have charged it
        machine._meter_allgather(words=[v[0] for v in vals])
        s_total = int(vals[0][1])
        if s_total == 0:
            cur = DistArray(machine, ref=part_refs[0], sizes=sizes, dtype=cur.dtype)
            rounds += 1
            continue
        machine.charge_ops(s_total * np.log2(max(s_total, 2)))
        sample_total += s_total
        machine.charge_ops(sizes.astype(np.float64))
        raw_counts = [
            np.array([v[6], v[7]], dtype=np.int64) for v in vals
        ]
        machine._meter_allreduce(raw_counts)
        n_lo = np.array([int(v[6]) for v in vals], dtype=np.int64)
        n_mid = np.array([int(v[7]) for v in vals], dtype=np.int64)
        lo_p, hi_p = vals[0][2], vals[0][3]
        na, nb = int(vals[0][4]), int(vals[0][5])

        if na >= k:
            cur = DistArray(machine, ref=part_refs[0], sizes=n_lo, dtype=cur.dtype)
            sizes = n_lo
            n = na
        elif na + nb < k:
            cur = DistArray(
                machine, ref=part_refs[2], sizes=sizes - n_lo - n_mid, dtype=cur.dtype
            )
            sizes = sizes - n_lo - n_mid
            k -= na + nb
            n = n - na - nb
        else:
            if lo_p == hi_p:
                # rank k falls inside a run of duplicates of the pivot
                value = lo_p.item() if hasattr(lo_p, "item") else lo_p
                if return_stats:
                    return SelectionStats(value, rounds + 1, sample_total, 0)
                return value
            cur = DistArray(machine, ref=part_refs[1], sizes=n_mid, dtype=cur.dtype)
            sizes = n_mid
            k -= na
            n = nb
        rounds += 1


def _gather_base_case(machine: Machine, data: DistArray, k: int):
    """Gather the residual problem to PE 0, solve it, broadcast the result."""
    gathered = machine.gather(data.chunks, root=0)[0]
    rest = np.concatenate([c for c in gathered if c.size])
    rest_sorted = np.sort(rest)
    machine.charge_ops_one(0, rest.size * np.log2(max(rest.size, 2)))
    value = rest_sorted[min(k, rest.size) - 1].item()
    return machine.broadcast(value, root=0)[0]


def select_topk_smallest(
    machine: Machine, data: DistArray, k: int, **kwargs
) -> tuple[DistArray, float]:
    """Extract the k globally smallest elements, exactly.

    Runs :func:`select_kth` to find the threshold, then finishes in a
    single SPMD step per Section 4's output convention: every PE counts
    its below/equal elements, the two-word counts ride one fused
    in-worker ``allreduce_exscan`` (total below + tie prefix), and each
    PE grants its remaining quota of threshold-equal duplicates in PE
    order and cuts locally -- so the output size is exactly ``k``
    regardless of ties, at the price of ONE backend round trip (the
    former count + tie-grant + cut sequence paid three).

    Returns ``(selected, threshold)``; ``selected`` stays distributed --
    possibly unevenly, which Section 9's redistribution can fix.
    """
    n = data.global_size
    k = check_rank(k, n)
    threshold = select_kth(machine, data, k, **kwargs)
    p = machine.p
    refs, vals = machine.backend.run_spmd(
        _topk_cut_kernel,
        [data._ensure_ref()],
        n_out=1,
        args=[(threshold, k)] * p,
    )
    # re-play the model: the local counting pass, then the fused
    # two-word collective (same charges the step-by-step driver made)
    machine.charge_ops(data.sizes().astype(np.float64))
    machine._meter_allreduce_exscan(2)
    out = DistArray(
        machine, ref=refs[0], sizes=[v[2] for v in vals], dtype=data.dtype
    )
    return out, threshold


def select_topk_largest(
    machine: Machine, data: DistArray, k: int, **kwargs
) -> tuple[DistArray, float]:
    """Extract the k globally largest elements, exactly (dual of
    :func:`select_topk_smallest` via negation -- performed where the
    chunks live)."""
    sel, thr = select_topk_smallest(machine, data.negate(), k, **kwargs)
    return sel.negate(), -thr
