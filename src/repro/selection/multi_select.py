"""Distributed multiselection: many ranks in one pass.

A natural library extension of Section 4.1 (the sequential analogue is
classic multiselection, cf. the multisequence selection literature the
paper cites [35, 38]): given ranks ``k_1 < ... < k_m``, find all m order
statistics.  Running Algorithm 1 independently m times costs
``O(m n/p)`` local work; sharing the partitioning between ranks brings
it down to ``O(n/p log m)`` -- each recursion level splits both the data
*and* the rank set, so every element takes part in at most
``O(log m + log_p n)`` partitioning rounds.

Execution is resident-chunk SPMD with *cross-level pipelining*: every
PE keeps a list of segment records pinned in the backend, and one level
of the shared recursion is TWO pipelined worker commands:

* the **sample-extract half** draws each split segment's Bernoulli
  sample where the data lives (counter-addressed randomness,
  :mod:`repro.machine.ctrrng` -- the driver ships a tiny draw address,
  never index arrays or generator state) and fuses every segment's
  sample (plus finishing segments' residual content) into one
  in-worker allgather;
* the **partition-count half** fuses all split segments' two-word part
  counts into one in-worker all-reduction and -- because the reduced
  counts are replicated -- derives the *next* level's segment records
  entirely worker-side.

Since the next level's inputs exist in the workers as soon as the count
half runs, the driver does not need any level's results to issue the
next one: it issues levels ahead (up to the machine's
``pipeline_depth``), and consecutive recursion levels overlap in the
pipe (``max_inflight > 1`` across levels).  Only small per-level values
(sample word counts, finished values, charge metadata) return to the
driver, which settles them in issue order to keep the modeled cost
bit-identical at every depth; levels issued past the recursion's actual
end see an empty segment list and charge nothing.

:func:`quantiles` exposes the everyday use case (percentiles /
histogram boundaries of a distributed vector).
"""

from __future__ import annotations

import numpy as np

from ..common.sampling import bernoulli_sample_indices
from ..kernels import partition3
from ..machine import DistArray, Machine
from .sequential import fr_pivots

__all__ = ["multi_select", "quantiles"]


# ----------------------------------------------------------------------
# Resident worker kernels (module-level so real backends can ship them)
# ----------------------------------------------------------------------
#
# Resident segment record, one list entry per active segment:
#     (arr, ranks, offset, n)
# where ``arr`` is this PE's slice, ``ranks`` the target ranks relative
# to the segment, ``offset`` the segment's global rank offset and ``n``
# its global size (replicated -- every PE derives the identical record
# list from the all-reduced part counts, which is what lets the driver
# issue the next level before this one settles).


def _wrap_ms_state(rank: int, chunk: np.ndarray, ks: tuple, n_total: int):
    """Initial resident state: one root segment per PE."""
    return [(np.asarray(chunk), ks, 0, n_total)], None


def _ms_sample_kernel(rank: int, segs: list, p: int, addr, level: int,
                      base_case: int, force: bool):
    """Sample-extract half of one recursion level.

    Draws each split segment's Bernoulli sample indices in place with
    the counter-addressed generator ``addr.local(rank, draw=level)``
    (the whole multiselection owns one draw sequence; the level index
    subdivides it, so speculative levels never perturb the machine's
    address stream).  All samples -- and finishing segments' full
    residual content -- ride ONE in-worker allgather; pivots and
    partitions are computed replicated and handed to the count half
    through resident state.

    Returns per-PE ``(sample_words, finishes, meta)`` where
    ``finishes`` is the replicated list of resolved ``(global_rank,
    value)`` pairs and ``meta`` carries one charge record per segment:
    ``("finish", rest_size)`` / ``("empty", local_size, rho)`` /
    ``("split", union_size, local_size, rho)``.
    """
    if not segs:
        # speculatively issued past the recursion's end: a pure no-op
        # (replicated decision -- every rank skips the collective)
        return [], (0, [], [])
    gen = addr.local(rank, draw=level)
    plans: list[tuple] = []
    samples: list[np.ndarray] = []
    for arr, ranks, offset, n in segs:
        if n <= base_case or force:
            plans.append(("finish", None))
            samples.append(arr)  # residual content is small by now
        else:
            rho = min(1.0, np.sqrt(p) / n)
            idx = bernoulli_sample_indices(gen, int(arr.size), rho)
            plans.append(("split", rho))
            samples.append(arr.copy() if idx is None else arr[idx])
    sample_words = int(sum(s.size for s in samples))
    gathered = yield ("allgather", samples)

    inter: list = []
    finishes: list[tuple] = []
    meta: list[tuple] = []
    for s, (arr, ranks, offset, n) in enumerate(segs):
        contrib = [g[s] for g in gathered if g[s].size]
        kind, rho = plans[s]
        if kind == "finish":
            rest = np.sort(np.concatenate(contrib)) if contrib else arr[:0]
            for k in ranks:
                finishes.append(
                    (offset + k, rest[min(k, rest.size) - 1].item())
                )
            inter.append(None)
            meta.append(("finish", int(rest.size)))
            continue
        if not contrib:  # empty sample union: retry the segment
            inter.append(("retry", arr, ranks, offset, n))
            meta.append(("empty", int(arr.size), float(rho)))
            continue
        mid_rank = ranks[len(ranks) // 2]
        union = np.sort(np.concatenate(contrib))
        lo_p, hi_p = fr_pivots(union, mid_rank, n)
        parts = partition3(arr, lo_p, hi_p)
        inter.append(("split", parts, lo_p, hi_p, ranks, offset, n))
        meta.append(("split", int(union.size), int(arr.size), float(rho)))
    return inter, (sample_words, finishes, meta)


def _ms_count_kernel(rank: int, inter: list):
    """Partition-count half of one recursion level.

    All split segments' two-word part counts share one in-worker
    all-reduction; the replicated totals let every rank derive the next
    level's segment records identically, so the new resident state is
    ready for the (already pipelined) next sample command without a
    driver round trip.  Returns per-PE ``(remaining, found)``:
    the replicated number of surviving segments and the ``(global_rank,
    value)`` pairs resolved by an exact pivot hit.
    """
    counts_vec: list[int] = []
    for entry in inter:
        if entry is not None and entry[0] == "split":
            parts = entry[1]
            counts_vec.extend([parts[0].size, parts[1].size])
    totals = None
    if counts_vec:  # replicated decision: all ranks agree
        totals = yield (
            "allreduce", np.asarray(counts_vec, dtype=np.int64), "sum"
        )

    new_segs: list = []
    found: list[tuple] = []
    ci = 0
    for entry in inter:
        if entry is None:  # finished at the sample half
            continue
        if entry[0] == "retry":
            _, arr, ranks, offset, n = entry
            new_segs.append((arr, ranks, offset, n))
            continue
        _, parts, lo_p, hi_p, ranks, offset, n = entry
        na, nb = int(totals[2 * ci]), int(totals[2 * ci + 1])
        ci += 1
        lo_ranks = tuple(k for k in ranks if k <= na)
        mid_ranks = tuple(k - na for k in ranks if na < k <= na + nb)
        hi_ranks = tuple(k - na - nb for k in ranks if k > na + nb)
        if lo_ranks:
            new_segs.append((parts[0], lo_ranks, offset, na))
        if mid_ranks:
            if lo_p == hi_p:
                v = lo_p.item() if hasattr(lo_p, "item") else lo_p
                for k in mid_ranks:
                    found.append((offset + na + k, v))
            else:
                new_segs.append((parts[1], mid_ranks, offset + na, nb))
        if hi_ranks:
            new_segs.append(
                (parts[2], hi_ranks, offset + na + nb, n - na - nb)
            )
    return new_segs, (len(new_segs), found)


def multi_select(
    machine: Machine,
    data: DistArray,
    ks,
    *,
    base_case: int | None = None,
    max_depth: int = 80,
) -> list:
    """Values of all requested order statistics (1-based ranks).

    Returns results in the order of the *sorted, deduplicated* ranks --
    use :func:`quantiles` for a friendlier interface.  Cost: shared
    recursion over disjoint segments; each *level* pays one fused
    Bernoulli-sample allgather and one fused part-count all-reduction
    covering every active segment, executed as two pipelined resident
    SPMD commands (the slices never leave the backend, and consecutive
    levels overlap in the pipe).
    """
    n = data.global_size
    ks_sorted = sorted(set(int(k) for k in ks))
    if not ks_sorted:
        return []
    if ks_sorted[0] < 1 or ks_sorted[-1] > n:
        raise ValueError(f"ranks must lie in 1..{n}, got {ks_sorted[0]}..{ks_sorted[-1]}")
    p = machine.p
    if base_case is None:
        base_case = int(max(64, 4 * np.sqrt(p)))

    out: dict[int, object] = {}
    # The root size falls out of the driver-tracked sizes (the one-word
    # all-reduction the algorithm needs is charged through the meter).
    machine._meter_allreduce(words=1)
    n_total = int(data.sizes().sum())
    # One draw sequence for the whole multiselection; levels subdivide
    # it by draw index, so the machine's address stream advances the
    # same way at every pipeline depth (speculatively issued levels
    # would otherwise burn depth-dependent sequence numbers).
    addr = machine.draw_addr()
    seg_refs, wrap = machine.backend.submit_map_resident(
        _wrap_ms_state,
        [data._ensure_ref()],
        n_out=1,
        args=[(tuple(ks_sorted), n_total)] * p,
    )
    seg_ref = seg_refs[0]

    # Staggered cross-level issue: the count half derives level L+1's
    # resident state worker-side, so level L+1's SAMPLE command depends
    # on nothing the driver has to see -- it is issued speculatively,
    # one level ahead, before level L settles (the workers run it back
    # to back with level L's count, which is the cross-level overlap).
    # The count half of L+1 is held back until level L's settled result
    # confirms the recursion is still alive, so a whole run wastes at
    # most ONE no-op command (the dangling speculative sample after the
    # final level).  Waits stay in submit order (the PendingValues
    # contract).
    def _issue_sample(lvl: int):
        inter_refs, p_samp = machine.backend.submit_spmd(
            _ms_sample_kernel,
            [seg_ref],
            n_out=1,
            args=[(p, addr, lvl, base_case, lvl >= max_depth)] * p,
        )
        return inter_refs[0], p_samp

    def _issue_count(inter_ref):
        out_refs, p_cnt = machine.backend.submit_spmd(
            _ms_count_kernel, [inter_ref], n_out=1
        )
        return out_refs[0], p_cnt

    level = 1
    with machine.backend.coalesced():
        inter_ref, p_samp = _issue_sample(level)
        seg_ref, p_cnt = _issue_count(inter_ref)
    if wrap is not None:
        wrap.wait()  # settle in submit order (carries no values)
        wrap = None
    next_inter, next_samp = (
        _issue_sample(level + 1) if level < max_depth else (None, None)
    )
    while True:
        svals = p_samp.wait()
        cvals = p_cnt.wait()
        # re-play the model from the small returned values, in issue
        # order (levels past the recursion's end are empty: no charges)
        _, finishes, meta0 = svals[0]
        if meta0:
            machine._meter_allgather(words=[v[0] for v in svals])
        n_split = 0
        for s, m in enumerate(meta0):
            if m[0] == "finish":
                rest_size = m[1]
                machine.charge_ops(
                    max(1, rest_size) * np.log2(max(rest_size, 2))
                )
                continue
            rho = m[-1]
            machine.charge_ops(
                [max(1.0, rho * svals[i][2][s][-2]) for i in range(p)]
            )
            if m[0] == "split":
                usize = m[1]
                n_split += 1
                machine.charge_ops(usize * np.log2(max(usize, 2)))
                machine.charge_ops(
                    np.array(
                        [svals[i][2][s][-2] for i in range(p)],
                        dtype=np.float64,
                    )
                )
        if n_split:
            machine._meter_allreduce(words=2 * n_split)
        remaining, found = cvals[0]
        for grank, v in finishes:
            out[grank] = v
        for grank, v in found:
            out[grank] = v
        if remaining == 0:
            # the dangling speculative sample saw empty state: a no-op
            # that returns no values and charges nothing
            if next_samp is not None:
                next_samp.wait()
            break
        level += 1
        inter_ref, p_samp = next_inter, next_samp
        # the two submits of a steady-state level ride one command frame
        with machine.backend.coalesced():
            seg_ref, p_cnt = _issue_count(inter_ref)
            next_inter, next_samp = (
                _issue_sample(level + 1) if level < max_depth else (None, None)
            )

    return [out[k] for k in ks_sorted]


def quantiles(machine: Machine, data: DistArray, qs) -> list:
    """Distributed quantiles (e.g. ``qs=[0.25, 0.5, 0.75]``).

    Uses the nearest-rank definition: quantile q is the element of rank
    ``ceil(q * n)`` (rank 1 for q = 0).  Returns values in the order of
    the given ``qs``.
    """
    n = data.global_size
    if n == 0:
        raise ValueError("quantiles of an empty array")
    qs = list(qs)
    if any(not 0.0 <= q <= 1.0 for q in qs):
        raise ValueError(f"quantiles must lie in [0, 1], got {qs}")
    ranks = [max(1, int(np.ceil(q * n))) for q in qs]
    ordered = multi_select(machine, data, ranks)
    by_rank = dict(zip(sorted(set(ranks)), ordered))
    return [by_rank[r] for r in ranks]
