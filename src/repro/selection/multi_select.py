"""Distributed multiselection: many ranks in one pass.

A natural library extension of Section 4.1 (the sequential analogue is
classic multiselection, cf. the multisequence selection literature the
paper cites [35, 38]): given ranks ``k_1 < ... < k_m``, find all m order
statistics.  Running Algorithm 1 independently m times costs
``O(m n/p)`` local work; sharing the partitioning between ranks brings
it down to ``O(n/p log m)`` -- each recursion level splits both the data
*and* the rank set, so every element takes part in at most
``O(log m + log_p n)`` partitioning rounds.

:func:`quantiles` exposes the everyday use case (percentiles /
histogram boundaries of a distributed vector).
"""

from __future__ import annotations

import numpy as np

from ..common.sampling import bernoulli_sample
from ..machine import DistArray, Machine
from .sequential import fr_pivots

__all__ = ["multi_select", "quantiles"]


def multi_select(
    machine: Machine,
    data: DistArray,
    ks,
    *,
    base_case: int | None = None,
    max_depth: int = 80,
) -> list:
    """Values of all requested order statistics (1-based ranks).

    Returns results in the order of the *sorted, deduplicated* ranks --
    use :func:`quantiles` for a friendlier interface.  Cost: shared
    recursion over disjoint segments; each segment pays one Bernoulli
    sample + one vector all-reduction per level.
    """
    n = data.global_size
    ks_sorted = sorted(set(int(k) for k in ks))
    if not ks_sorted:
        return []
    if ks_sorted[0] < 1 or ks_sorted[-1] > n:
        raise ValueError(f"ranks must lie in 1..{n}, got {ks_sorted[0]}..{ks_sorted[-1]}")
    if base_case is None:
        base_case = int(max(64, 4 * np.sqrt(machine.p)))

    out: dict[int, object] = {}
    # Work list of (chunks, ranks-relative, rank-offset, segment-size).
    # The root size comes from one all-reduction; child segment sizes are
    # derived locally from the per-level part counts, so each segment
    # pays one collective per level instead of two.
    chunks0 = [np.asarray(c) for c in data.chunks]
    sizes0 = [c.size for c in chunks0]
    n_total = int(machine.allreduce(sizes0, op="sum")[0])
    segments = [(chunks0, ks_sorted, 0, n_total)]
    depth = 0
    while segments:
        depth += 1
        next_segments = []
        for chunks, ranks, offset, seg_n in segments:
            sizes = np.array([c.size for c in chunks], dtype=np.int64)
            if seg_n <= base_case or depth >= max_depth:
                _finish_segment(machine, chunks, ranks, offset, out)
                continue

            rho = min(1.0, np.sqrt(machine.p) / seg_n)
            local_samples = [
                bernoulli_sample(machine.rngs[i], chunks[i], rho)
                for i in range(machine.p)
            ]
            machine.charge_ops([max(1.0, rho * s) for s in sizes])
            gathered = machine.allgather(local_samples)[0]
            nonempty = [s for s in gathered if s.size]
            if not nonempty:
                next_segments.append((chunks, ranks, offset, seg_n))
                continue
            sample = np.sort(np.concatenate(nonempty))
            machine.charge_ops(sample.size * np.log2(max(sample.size, 2)))

            # pivot around the median *rank* of this segment
            mid_rank = ranks[len(ranks) // 2]
            lo_p, hi_p = fr_pivots(sample, mid_rank, seg_n)

            parts_lo, parts_mid, parts_hi = [], [], []
            n_lo = np.zeros(machine.p, dtype=np.int64)
            n_mid = np.zeros(machine.p, dtype=np.int64)
            for i in range(machine.p):
                c = chunks[i]
                below = c < lo_p
                mid = (c >= lo_p) & (c <= hi_p)
                parts_lo.append(c[below])
                parts_mid.append(c[mid])
                parts_hi.append(c[~below & ~mid])
                n_lo[i] = parts_lo[-1].size
                n_mid[i] = parts_mid[-1].size
            machine.charge_ops(sizes.astype(np.float64))
            counts = machine.allreduce(
                [np.array([n_lo[i], n_mid[i]]) for i in range(machine.p)], op="sum"
            )[0]
            na, nb = int(counts[0]), int(counts[1])

            lo_ranks = [k for k in ranks if k <= na]
            mid_ranks = [k - na for k in ranks if na < k <= na + nb]
            hi_ranks = [k - na - nb for k in ranks if k > na + nb]
            if lo_ranks:
                next_segments.append((parts_lo, lo_ranks, offset, na))
            if mid_ranks:
                if lo_p == hi_p:
                    for k in mid_ranks:
                        out[offset + na + k] = (
                            lo_p.item() if hasattr(lo_p, "item") else lo_p
                        )
                else:
                    next_segments.append((parts_mid, mid_ranks, offset + na, nb))
            if hi_ranks:
                next_segments.append(
                    (parts_hi, hi_ranks, offset + na + nb, seg_n - na - nb)
                )
        segments = next_segments

    return [out[k] for k in ks_sorted]


def _finish_segment(machine, chunks, ranks, offset, out) -> None:
    """Gather a small residual segment to PE 0 and read off its ranks."""
    gathered = machine.gather(chunks, root=0)[0]
    rest = np.sort(np.concatenate([c for c in gathered if c.size]))
    machine.charge_ops_one(0, max(1, rest.size) * np.log2(max(rest.size, 2)))
    values = [rest[min(k, rest.size) - 1].item() for k in ranks]
    values = machine.broadcast(values, root=0)[0]
    for k, v in zip(ranks, values):
        out[offset + k] = v


def quantiles(machine: Machine, data: DistArray, qs) -> list:
    """Distributed quantiles (e.g. ``qs=[0.25, 0.5, 0.75]``).

    Uses the nearest-rank definition: quantile q is the element of rank
    ``ceil(q * n)`` (rank 1 for q = 0).  Returns values in the order of
    the given ``qs``.
    """
    n = data.global_size
    if n == 0:
        raise ValueError("quantiles of an empty array")
    qs = list(qs)
    if any(not 0.0 <= q <= 1.0 for q in qs):
        raise ValueError(f"quantiles must lie in [0, 1], got {qs}")
    ranks = [max(1, int(np.ceil(q * n))) for q in qs]
    ordered = multi_select(machine, data, ranks)
    by_rank = dict(zip(sorted(set(ranks)), ordered))
    return [by_rank[r] for r in ranks]
