"""Distributed multiselection: many ranks in one pass.

A natural library extension of Section 4.1 (the sequential analogue is
classic multiselection, cf. the multisequence selection literature the
paper cites [35, 38]): given ranks ``k_1 < ... < k_m``, find all m order
statistics.  Running Algorithm 1 independently m times costs
``O(m n/p)`` local work; sharing the partitioning between ranks brings
it down to ``O(n/p log m)`` -- each recursion level splits both the data
*and* the rank set, so every element takes part in at most
``O(log m + log_p n)`` partitioning rounds.

Execution is resident-chunk SPMD: every PE keeps a *list* of segment
slices pinned in the backend, and one level of the shared recursion is
ONE worker command (:meth:`Backend.run_spmd`) covering every active
segment at once.  The per-segment Bernoulli samples (and the residual
content of segments small enough to finish) share a single in-worker
allgather; the per-segment two-word part counts share a single
in-worker all-reduction.  Only per-segment counts, pivots and finished
values return to the driver -- the slices never move, and the level
cost is two fused collectives instead of two per segment.

:func:`quantiles` exposes the everyday use case (percentiles /
histogram boundaries of a distributed vector).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.sampling import bernoulli_sample_indices
from ..machine import DistArray, Machine
from .sequential import fr_pivots

__all__ = ["multi_select", "quantiles"]


@dataclass
class _Segment:
    """Driver-side metadata of one recursion segment (the data itself
    stays resident; ``sizes`` mirrors the per-PE slice lengths, which
    the driver derives from returned part counts)."""

    ranks: tuple[int, ...]  # target ranks, relative to the segment
    offset: int             # global rank offset of the segment
    n: int                  # global segment size
    sizes: np.ndarray       # per-PE slice lengths


# ----------------------------------------------------------------------
# Resident worker kernel (module-level so real backends can ship it)
# ----------------------------------------------------------------------

def _wrap_segments(rank: int, chunk: np.ndarray) -> tuple:
    """Initial resident state: a one-segment list per PE."""
    return ([np.asarray(chunk)], None)


def _multi_select_level(rank: int, segs: list, specs, idxs):
    """One full level of the shared recursion, where the slices live.

    ``specs[s]`` describes segment ``s``: ``("split", ranks, mid_rank,
    seg_n)`` for a segment that recurses or ``("finish", ranks)`` for a
    residual one.  ``idxs[s]`` holds this PE's pre-drawn Bernoulli
    sample indices for split segments (``None`` = take everything).

    SPMD generator: ALL segments' samples (and finish segments' full
    residual content) ride one in-worker allgather; all split segments'
    two-word part counts ride one in-worker all-reduction.  Returns the
    next level's segment list plus per-segment small values
    (``("finish", values, rest_size)`` / ``("empty",)`` /
    ``("split", lo_p, hi_p, na, nb, union_size, n_lo, n_mid)``) and this
    PE's allgather contribution in words.
    """
    samples = []
    for seg, spec, idx in zip(segs, specs, idxs):
        if spec[0] == "finish":
            samples.append(seg)  # residual content is small by now
        else:
            samples.append(seg.copy() if idx is None else seg[idx])
    sample_words = int(sum(s.size for s in samples))
    gathered = yield ("allgather", samples)

    infos: list[tuple] = []
    partitions: list = []
    counts_vec: list[int] = []
    for s, (seg, spec) in enumerate(zip(segs, specs)):
        contrib = [g[s] for g in gathered if g[s].size]
        if spec[0] == "finish":
            rest = np.sort(np.concatenate(contrib)) if contrib else seg[:0]
            values = tuple(
                rest[min(k, rest.size) - 1].item() for k in spec[1]
            )
            infos.append(("finish", values, int(rest.size)))
            partitions.append(None)
            continue
        if not contrib:  # empty sample union: retry the segment
            infos.append(("empty",))
            partitions.append(None)
            continue
        _, ranks, mid_rank, seg_n = spec
        union = np.sort(np.concatenate(contrib))
        lo_p, hi_p = fr_pivots(union, mid_rank, seg_n)
        below = seg < lo_p
        mid = (seg >= lo_p) & (seg <= hi_p)
        parts = (seg[below], seg[mid], seg[~below & ~mid])
        infos.append(None)  # filled in below, once the counts arrive
        partitions.append((parts, lo_p, hi_p, int(union.size)))
        counts_vec.extend([parts[0].size, parts[1].size])

    totals = None
    if counts_vec:  # replicated decision: all ranks agree on the specs
        totals = yield (
            "allreduce", np.asarray(counts_vec, dtype=np.int64), "sum"
        )

    new_segs: list[np.ndarray] = []
    ci = 0
    for s, spec in enumerate(specs):
        if partitions[s] is None:
            if infos[s][0] == "empty":
                new_segs.append(segs[s])
            continue
        parts, lo_p, hi_p, usize = partitions[s]
        na, nb = int(totals[2 * ci]), int(totals[2 * ci + 1])
        ci += 1
        infos[s] = (
            "split", lo_p, hi_p, na, nb, usize,
            int(parts[0].size), int(parts[1].size),
        )
        ranks = spec[1]
        if any(k <= na for k in ranks):
            new_segs.append(parts[0])
        if any(na < k <= na + nb for k in ranks) and lo_p != hi_p:
            new_segs.append(parts[1])
        if any(k > na + nb for k in ranks):
            new_segs.append(parts[2])
    return new_segs, (infos, sample_words)


def multi_select(
    machine: Machine,
    data: DistArray,
    ks,
    *,
    base_case: int | None = None,
    max_depth: int = 80,
) -> list:
    """Values of all requested order statistics (1-based ranks).

    Returns results in the order of the *sorted, deduplicated* ranks --
    use :func:`quantiles` for a friendlier interface.  Cost: shared
    recursion over disjoint segments; each *level* pays one fused
    Bernoulli-sample allgather and one fused part-count all-reduction
    covering every active segment, executed as a single resident SPMD
    worker command (the slices never leave the backend).
    """
    n = data.global_size
    ks_sorted = sorted(set(int(k) for k in ks))
    if not ks_sorted:
        return []
    if ks_sorted[0] < 1 or ks_sorted[-1] > n:
        raise ValueError(f"ranks must lie in 1..{n}, got {ks_sorted[0]}..{ks_sorted[-1]}")
    p = machine.p
    if base_case is None:
        base_case = int(max(64, 4 * np.sqrt(p)))

    out: dict[int, object] = {}
    # The root size falls out of the driver-tracked sizes (the one-word
    # all-reduction the algorithm needs is charged through the meter);
    # child segment sizes derive from the returned per-level part counts.
    sizes0 = data.sizes()
    machine._meter_allreduce(words=1)
    n_total = int(sizes0.sum())
    # overlapped issue: the wrap executes in the workers while the
    # driver draws the first level's Bernoulli sample indices, and the
    # level-1 command queues up right behind it (workers run commands
    # in seq order, so the wrapped state is ready when level 1 starts)
    seg_refs, wrap = machine.backend.submit_map_resident(
        _wrap_segments, [data._ensure_ref()], n_out=1
    )
    seg_ref = seg_refs[0]
    segments = [_Segment(tuple(ks_sorted), 0, n_total, sizes0.astype(np.int64))]
    depth = 0
    while segments:
        depth += 1
        force_finish = depth >= max_depth
        specs: list[tuple] = []
        idxs: list[list] = [[] for _ in range(p)]
        for seg in segments:
            if seg.n <= base_case or force_finish:
                specs.append(("finish", seg.ranks))
                for i in range(p):
                    idxs[i].append(None)
                continue
            rho = min(1.0, np.sqrt(p) / seg.n)
            # index draws stay in the driver, keeping machine.rngs in
            # step across backends (same draw sequence as sampling the
            # values directly); only the small index arrays travel
            for i in range(p):
                idxs[i].append(
                    bernoulli_sample_indices(machine.rngs[i], int(seg.sizes[i]), rho)
                )
            machine.charge_ops([max(1.0, rho * s) for s in seg.sizes])
            mid_rank = seg.ranks[len(seg.ranks) // 2]
            specs.append(("split", seg.ranks, mid_rank, seg.n))

        out_refs, pending = machine.backend.submit_spmd(
            _multi_select_level,
            [seg_ref],
            n_out=1,
            args=[(specs, idxs[i]) for i in range(p)],
        )
        if wrap is not None:
            wrap.wait()  # settle in submit order (carries no values)
            wrap = None
        vals = pending.wait()
        seg_ref = out_refs[0]
        # re-play the model from the small returned values
        machine._meter_allgather(words=[v[1] for v in vals])
        infos0 = vals[0][0]
        next_segments: list[_Segment] = []
        counted_split = False
        for s, seg in enumerate(segments):
            info = infos0[s]
            if info[0] == "finish":
                _, values, rest_size = info
                machine.charge_ops(
                    max(1, rest_size) * np.log2(max(rest_size, 2))
                )
                for k, v in zip(seg.ranks, values):
                    out[seg.offset + k] = v
                continue
            if info[0] == "empty":
                next_segments.append(seg)
                continue
            _, lo_p, hi_p, na, nb, usize, _, _ = info
            counted_split = True
            machine.charge_ops(usize * np.log2(max(usize, 2)))
            machine.charge_ops(seg.sizes.astype(np.float64))
            n_lo = np.array([int(vals[i][0][s][6]) for i in range(p)], dtype=np.int64)
            n_mid = np.array([int(vals[i][0][s][7]) for i in range(p)], dtype=np.int64)
            lo_ranks = [k for k in seg.ranks if k <= na]
            mid_ranks = [k - na for k in seg.ranks if na < k <= na + nb]
            hi_ranks = [k - na - nb for k in seg.ranks if k > na + nb]
            if lo_ranks:
                next_segments.append(
                    _Segment(tuple(lo_ranks), seg.offset, na, n_lo)
                )
            if mid_ranks:
                if lo_p == hi_p:
                    v = lo_p.item() if hasattr(lo_p, "item") else lo_p
                    for k in mid_ranks:
                        out[seg.offset + na + k] = v
                else:
                    next_segments.append(
                        _Segment(tuple(mid_ranks), seg.offset + na, nb, n_mid)
                    )
            if hi_ranks:
                next_segments.append(
                    _Segment(
                        tuple(hi_ranks), seg.offset + na + nb,
                        seg.n - na - nb, seg.sizes - n_lo - n_mid,
                    )
                )
        if counted_split:
            n_split = sum(1 for info in infos0 if info[0] == "split")
            machine._meter_allreduce(words=2 * n_split)
        segments = next_segments

    return [out[k] for k in ks_sorted]


def quantiles(machine: Machine, data: DistArray, qs) -> list:
    """Distributed quantiles (e.g. ``qs=[0.25, 0.5, 0.75]``).

    Uses the nearest-rank definition: quantile q is the element of rank
    ``ceil(q * n)`` (rank 1 for q = 0).  Returns values in the order of
    the given ``qs``.
    """
    n = data.global_size
    if n == 0:
        raise ValueError("quantiles of an empty array")
    qs = list(qs)
    if any(not 0.0 <= q <= 1.0 for q in qs):
        raise ValueError(f"quantiles must lie in [0, 1], got {qs}")
    ranks = [max(1, int(np.ceil(q * n))) for q in qs]
    ordered = multi_select(machine, data, ranks)
    by_rank = dict(zip(sorted(set(ranks)), ordered))
    return [by_rank[r] for r in ranks]
