"""Approximate multisequence selection with flexible k (Section 4.3).

``amsSelect`` (Algorithm 2) returns the k̂ smallest elements for some
k̂ in a caller-supplied range ``[k_lo, k_hi]``, trading exactness of the
output *size* for a latency of ``O(log k + alpha log p)`` -- a full
``log kp`` factor below exact multisequence selection.

The estimator exploits locally sorted data: a Bernoulli(rho) sample's
smallest element has geometrically distributed rank, so each PE draws
one geometric deviate ``x`` (constant time), reads its window's x-th
element, and a single min-reduction yields a truthful estimate ``v`` of
an element with rank ``~1/rho``.  Counting ``<= v`` via binary search
plus one sum-reduction either finishes (count in range) or recurses on
the half bracketing the target.  When the target rank is close to the
total size ``n``, the dual *max-based* estimator is used (sampling from
the top), which is what the ``k_lo < n - k_hi`` branch switches on.

The success-probability-maximizing sampling rates are taken verbatim
from Algorithm 2:

* min-based: ``rho = 1 - ((k_lo - 1) / k_hi) ^ (1 / (k_hi - k_lo + 1))``
* max-based: ``rho = 1 - ((n - k_hi) / (n - k_lo + 1))
  ^ (1 / (k_hi - k_lo + 1))``

:func:`ams_select_batched` implements the "multiple concurrent trials"
refinement (Theorem 4): ``d`` estimates ride in one vector-valued
reduction, so the expected number of rounds drops to O(1) already for
``k_hi - k_lo = Omega(k/d)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.ordering import BOTTOM, TOP
from ..common.validation import check_rank_range
from ..machine import Machine
from .accessors import SortedSequence, as_sorted_seq
from .sorted_select import ms_select_with_cuts

__all__ = ["ams_select", "ams_select_batched", "AmsResult"]

_POS_INF = float("inf")


@dataclass(frozen=True)
class AmsResult:
    """Result of a flexible selection.

    Attributes
    ----------
    value:
        The threshold: the k̂-th smallest element overall.
    k:
        The achieved output size k̂ (``k_lo <= k <= k_hi``).
    cuts:
        Per-PE count of selected elements (the k̂ smallest are exactly
        the union of each PE's first ``cuts[i]`` window elements).
    rounds:
        Estimator rounds used (each costs O(alpha log p)).
    exact_fallback:
        True if the safety fallback to exact ``msSelect`` fired.
    """

    value: object
    k: int
    cuts: tuple[int, ...]
    rounds: int
    exact_fallback: bool = False


def _min_based_rate(k_lo: int, k_hi: int) -> float:
    """Sampling rate of the min-based estimator (Algorithm 2)."""
    if k_lo <= 1:
        return 1.0
    return 1.0 - ((k_lo - 1.0) / k_hi) ** (1.0 / (k_hi - k_lo + 1.0))


def _max_based_rate(k_lo: int, k_hi: int, n: int) -> float:
    """Sampling rate of the max-based (dual) estimator (Algorithm 2)."""
    if k_hi >= n:
        return 1.0
    return 1.0 - ((n - k_hi) / (n - k_lo + 1.0)) ** (1.0 / (k_hi - k_lo + 1.0))


def ams_select(
    machine: Machine,
    seqs,
    k_lo: int,
    k_hi: int,
    *,
    max_rounds: int = 60,
) -> AmsResult:
    """Select the k̂ smallest elements with ``k_lo <= k̂ <= k_hi``.

    Expected ``O(log k_hi + alpha log p)`` when
    ``k_hi - k_lo = Omega(k_hi)`` (Theorem 3).  Falls back to exact
    :func:`~repro.selection.sorted_select.ms_select_with_cuts` (rank
    ``k_lo``) after ``max_rounds`` unsuccessful estimator rounds, which
    keeps the worst case terminating without affecting the expectation.
    """
    seqs = [as_sorted_seq(s) for s in seqs]
    p = machine.p
    if len(seqs) != p:
        raise ValueError(f"need one sequence per PE (p={p}, got {len(seqs)})")
    n = int(machine.allreduce([len(s) for s in seqs], op="sum")[0])
    k_lo, k_hi = check_rank_range(k_lo, k_hi, n)

    # window state: accepted[i] elements of PE i are already committed to
    # the output; [lo, hi) is the remaining candidate window
    lo = [0] * p
    hi = [len(s) for s in seqs]
    accepted = [0] * p
    accepted_total = 0
    cur_lo, cur_hi, cur_n = k_lo, k_hi, n  # relative to remaining windows

    # per-PE estimator draws from one counter-addressed allocation
    addr = machine.draw_addr()
    gens = [addr.local(i) for i in range(p)]

    for rnd in range(1, max_rounds + 1):
        v = _draw_pivot(machine, seqs, lo, hi, cur_lo, cur_hi, cur_n, gens)
        if v is None:  # no PE produced a sample: retry
            continue

        j = []
        for i in range(p):
            le = int(np.clip(seqs[i].count_le(v), lo[i], hi[i])) - lo[i]
            j.append(le)
            machine.charge_ops_one(i, np.log2(max(hi[i] - lo[i], 2)))
        count = int(machine.allreduce(j, op="sum")[0])

        if count < cur_lo:
            # everything <= v is accepted; recurse above it
            for i in range(p):
                accepted[i] += j[i]
                lo[i] += j[i]
            accepted_total += count
            cur_lo -= count
            cur_hi -= count
            cur_n -= count
        elif count > cur_hi:
            for i in range(p):
                hi[i] = lo[i] + j[i]
            cur_n = count
        else:
            cuts = tuple(accepted[i] + j[i] for i in range(p))
            return AmsResult(v, accepted_total + count, cuts, rnd)

    # Safety net: exact selection of rank cur_lo among the remaining windows
    value, cuts = _exact_fallback(machine, seqs, lo, hi, accepted, cur_lo)
    return AmsResult(value, accepted_total + cur_lo, cuts, max_rounds, True)


def _draw_pivot(machine, seqs, lo, hi, cur_lo, cur_hi, cur_n, gens):
    """One estimator round: geometric deviate per PE + min/max reduction.

    ``gens[i]`` is PE ``i``'s counter-addressed stream for this call."""
    p = machine.p
    use_min = cur_lo < cur_n - cur_hi
    if use_min:
        rho = _min_based_rate(cur_lo, cur_hi)
        picks = []
        for i in range(p):
            size = hi[i] - lo[i]
            x = int(gens[i].geometric(rho)) if rho < 1.0 else 1
            picks.append(seqs[i].item(lo[i] + x - 1) if 1 <= x <= size else TOP)
            machine.charge_ops_one(i, np.log2(max(size, 2)))
        v = machine.allreduce(picks, op="min")[0]
        return None if v is TOP else v
    rho = _max_based_rate(cur_lo, cur_hi, cur_n)
    picks = []
    for i in range(p):
        size = hi[i] - lo[i]
        x = int(gens[i].geometric(rho)) if rho < 1.0 else 1
        picks.append(seqs[i].item(hi[i] - x) if 1 <= x <= size else BOTTOM)
        machine.charge_ops_one(i, np.log2(max(size, 2)))
    v = machine.allreduce(picks, op="max")[0]
    return None if v is BOTTOM else v


def _exact_fallback(machine, seqs, lo, hi, accepted, k_rel):
    """Exact rank-``k_rel`` selection on the remaining windows."""
    windows = [_SeqWindow(seqs[i], lo[i], hi[i]) for i in range(machine.p)]
    value, rel_cuts = ms_select_with_cuts(machine, windows, k_rel)
    cuts = tuple(accepted[i] + rel_cuts[i] for i in range(machine.p))
    return value, cuts


# ----------------------------------------------------------------------
# SPMD generator form (resident execution inside backend workers)
# ----------------------------------------------------------------------

class _SeqWindow:
    """Window view of a sorted-sequence adapter (kernel-side helper for
    the exact fallback of :func:`ams_select_gen`)."""

    __slots__ = ("seq", "lo", "hi")

    def __init__(self, seq, lo: int, hi: int):
        self.seq, self.lo, self.hi = seq, lo, hi

    def __len__(self):
        return self.hi - self.lo

    def item(self, i):
        return self.seq.item(self.lo + i)

    def count_le(self, v):
        return int(np.clip(self.seq.count_le(v), self.lo, self.hi)) - self.lo


def ams_select_gen(rank, p, seq, k_lo, k_hi, local_rng, shared_rng, log, *, max_rounds=60):
    """SPMD generator form of :func:`ams_select` over per-rank views.

    ``local_rng`` is this rank's stream and ``shared_rng`` the
    replicated one, both derived by the calling kernel from a counter
    draw address (``addr.local(rank)`` / ``addr.shared()``); the shared
    stream is only consumed if the exact fallback fires.  Yields SPMD
    collectives, appends charge entries to ``log`` and returns
    ``(value, k_hat, cut, rounds, exact_fallback)``.
    """
    from ..machine.metrics import payload_words
    from .sorted_select import ms_select_with_cuts_gen

    totals = yield ("allreduce", len(seq), "sum")
    log.append(("allreduce", 1))
    n = int(totals)
    k_lo, k_hi = check_rank_range(k_lo, k_hi, n)

    lo, hi = 0, len(seq)
    accepted = 0
    accepted_total = 0
    cur_lo, cur_hi, cur_n = k_lo, k_hi, n

    for rnd in range(1, max_rounds + 1):
        # estimator round: geometric deviate + min/max reduction
        size = hi - lo
        use_min = cur_lo < cur_n - cur_hi
        if use_min:
            rho = _min_based_rate(cur_lo, cur_hi)
            x = int(local_rng.geometric(rho)) if rho < 1.0 else 1
            pick = seq.item(lo + x - 1) if 1 <= x <= size else TOP
            log.append(("ops", np.log2(max(size, 2))))
            v = yield ("allreduce", pick, "min")
            log.append(("allreduce", payload_words(pick)))
            if v is TOP:
                continue
        else:
            rho = _max_based_rate(cur_lo, cur_hi, cur_n)
            x = int(local_rng.geometric(rho)) if rho < 1.0 else 1
            pick = seq.item(hi - x) if 1 <= x <= size else BOTTOM
            log.append(("ops", np.log2(max(size, 2))))
            v = yield ("allreduce", pick, "max")
            log.append(("allreduce", payload_words(pick)))
            if v is BOTTOM:
                continue

        j = int(np.clip(seq.count_le(v), lo, hi)) - lo
        log.append(("ops", np.log2(max(size, 2))))
        count = yield ("allreduce", j, "sum")
        log.append(("allreduce", 1))
        count = int(count)

        if count < cur_lo:
            accepted += j
            lo += j
            accepted_total += count
            cur_lo -= count
            cur_hi -= count
            cur_n -= count
        elif count > cur_hi:
            hi = lo + j
            cur_n = count
        else:
            return v, accepted_total + count, accepted + j, rnd, False

    # safety net: exact selection of rank cur_lo in the remaining windows
    value, rel_cut, _ = yield from ms_select_with_cuts_gen(
        rank, p, _SeqWindow(seq, lo, hi), cur_lo, shared_rng, log
    )
    return value, accepted_total + cur_lo, accepted + rel_cut, max_rounds, True


def ams_select_batched(
    machine: Machine,
    seqs,
    k_lo: int,
    k_hi: int,
    *,
    d: int = 8,
    max_rounds: int = 40,
) -> AmsResult:
    """Flexible selection with ``d`` concurrent estimator trials
    (Theorem 4).

    All ``d`` pivot estimates travel in a single vector-valued
    min-reduction and a single vector-valued sum-reduction per round, so
    a round costs ``O(d log k + beta d + alpha log p)`` and succeeds with
    constant probability already for ``k_hi - k_lo = Omega(k_hi / d)``.
    """
    if d < 1:
        raise ValueError(f"need at least one trial, got d={d}")
    seqs = [as_sorted_seq(s) for s in seqs]
    p = machine.p
    if len(seqs) != p:
        raise ValueError(f"need one sequence per PE (p={p}, got {len(seqs)})")
    n = int(machine.allreduce([len(s) for s in seqs], op="sum")[0])
    k_lo, k_hi = check_rank_range(k_lo, k_hi, n)

    lo = [0] * p
    hi = [len(s) for s in seqs]
    accepted = [0] * p
    accepted_total = 0
    cur_lo, cur_hi, cur_n = k_lo, k_hi, n
    # per-PE trial draws from one counter-addressed allocation
    addr = machine.draw_addr()
    gens = [addr.local(i) for i in range(p)]

    for rnd in range(1, max_rounds + 1):
        rho = _min_based_rate(cur_lo, cur_hi)
        picks = np.full((p, d), _POS_INF)
        for i in range(p):
            size = hi[i] - lo[i]
            if size <= 0:
                continue
            xs = (
                gens[i].geometric(rho, size=d)
                if rho < 1.0
                else np.ones(d, dtype=np.int64)
            )
            valid = xs <= size
            if valid.any():
                idx = lo[i] + xs[valid].astype(np.int64) - 1
                vals = np.array([seqs[i].item(int(t)) for t in idx], dtype=np.float64)
                picks[i, valid] = vals
            machine.charge_ops_one(i, d * np.log2(max(size, 2)))
        pivots = machine.allreduce([picks[i] for i in range(p)], op="min")[0]
        finite = np.isfinite(pivots)
        if not finite.any():
            continue

        counts_local = np.zeros((p, d), dtype=np.int64)
        for i in range(p):
            for t in range(d):
                if not finite[t]:
                    continue
                le = int(np.clip(seqs[i].count_le(pivots[t]), lo[i], hi[i])) - lo[i]
                counts_local[i, t] = le
            machine.charge_ops_one(i, d * np.log2(max(hi[i] - lo[i], 2)))
        counts = machine.allreduce([counts_local[i] for i in range(p)], op="sum")[0]

        ok = finite & (counts >= cur_lo) & (counts <= cur_hi)
        if ok.any():
            t = int(np.flatnonzero(ok)[0])
            v = float(pivots[t])
            cuts = tuple(accepted[i] + int(counts_local[i, t]) for i in range(p))
            return AmsResult(v, accepted_total + int(counts[t]), cuts, rnd)

        # recurse between the largest underestimate and the smallest
        # overestimate among the d failed trials
        under = finite & (counts < cur_lo)
        over = finite & (counts > cur_hi)
        if under.any():
            t = int(np.argmax(np.where(under, counts, -1)))
            c = int(counts[t])
            for i in range(p):
                accepted[i] += int(counts_local[i, t])
                lo[i] += int(counts_local[i, t])
            accepted_total += c
            cur_lo -= c
            cur_hi -= c
            cur_n -= c
        if over.any():
            masked = np.where(over, counts, np.iinfo(np.int64).max)
            t = int(np.argmin(masked))
            # window cuts for the over-pivot are recomputed against the
            # (possibly just advanced) lo, since counts_local predate the
            # acceptance step above
            v_over = pivots[t]
            for i in range(p):
                le = int(np.clip(seqs[i].count_le(v_over), lo[i], len(seqs[i])))
                hi[i] = max(lo[i], le)
            cur_n = int(machine.allreduce([hi[i] - lo[i] for i in range(p)], op="sum")[0])

    value, cuts = _exact_fallback(machine, seqs, lo, hi, accepted, cur_lo)
    return AmsResult(value, accepted_total + cur_lo, cuts, max_rounds, True)
