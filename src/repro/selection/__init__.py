"""Distributed selection algorithms (Section 4 + Appendix A).

* :func:`select_kth` / :func:`select_topk_smallest` /
  :func:`select_topk_largest` -- unsorted input (Algorithm 1, Thm 1),
* :func:`ms_select` / :func:`ms_select_with_cuts` -- locally sorted
  input (Algorithm 9, Thm 16),
* :func:`ams_select` / :func:`ams_select_batched` -- flexible output
  size (Algorithm 2, Thms 3-4),
* :func:`kth_smallest` et al. -- sequential substrates.
"""

from .accessors import ArraySeq, SortedSequence, as_sorted_seq
from .flexible import AmsResult, ams_select, ams_select_batched
from .multi_select import multi_select, quantiles
from .sequential import floyd_rivest_select, fr_pivots, kth_smallest, quickselect
from .sorted_select import MsSelectStats, ms_select, ms_select_with_cuts
from .unsorted import (
    SelectionStats,
    select_kth,
    select_topk_largest,
    select_topk_smallest,
)

__all__ = [
    "AmsResult",
    "ArraySeq",
    "MsSelectStats",
    "SelectionStats",
    "SortedSequence",
    "ams_select",
    "ams_select_batched",
    "as_sorted_seq",
    "floyd_rivest_select",
    "fr_pivots",
    "kth_smallest",
    "ms_select",
    "ms_select_with_cuts",
    "multi_select",
    "quantiles",
    "quickselect",
    "select_kth",
    "select_topk_largest",
    "select_topk_smallest",
]
