"""Sorted-sequence adapters for the multisequence selection algorithms.

``msSelect`` (Appendix A) and ``amsSelect`` (Section 4.3) only need
three local primitives from each PE's sorted data:

* ``len(seq)``        -- number of elements,
* ``seq.item(i)``     -- the i-th smallest element (0-based),
* ``seq.count_le(v)`` -- number of elements ``<= v``.

Plain sorted NumPy arrays provide them in O(1)/O(log n) via
:class:`ArraySeq`; the bulk-parallel priority queue provides them on its
search trees (:class:`repro.pqueue.bulk_pq.TreapSeq`), which is exactly
the observation that makes ``deleteMin*`` "very similar to the
multi-sequence selection algorithms" (Section 5).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["SortedSequence", "ArraySeq", "as_sorted_seq"]


@runtime_checkable
class SortedSequence(Protocol):
    """Local primitives required from each PE's sorted data."""

    def __len__(self) -> int: ...

    def item(self, i: int): ...

    def count_le(self, v) -> int: ...


class ArraySeq:
    """A sorted (ascending) NumPy array as a :class:`SortedSequence`."""

    __slots__ = ("arr",)

    def __init__(self, arr: np.ndarray, *, check: bool = False):
        arr = np.asarray(arr)
        if arr.ndim != 1:
            raise ValueError(f"expected a one-dimensional array, got shape {arr.shape}")
        if check and arr.size > 1 and np.any(arr[1:] < arr[:-1]):
            raise ValueError("ArraySeq requires ascending input")
        self.arr = arr

    def __len__(self) -> int:
        return int(self.arr.size)

    def item(self, i: int):
        return self.arr[i]

    def count_le(self, v) -> int:
        return int(np.searchsorted(self.arr, v, side="right"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArraySeq(n={len(self)})"


def as_sorted_seq(obj) -> SortedSequence:
    """Coerce raw arrays to :class:`ArraySeq`; pass adapters through."""
    if isinstance(obj, np.ndarray):
        return ArraySeq(obj)
    if isinstance(obj, (list, tuple)):
        return ArraySeq(np.asarray(obj))
    if isinstance(obj, SortedSequence):
        return obj
    raise TypeError(f"cannot interpret {type(obj)!r} as a sorted sequence")
