"""Top-k sum aggregation (Section 8)."""

from .sum_topk import (
    DistKeyValue,
    SumAggResult,
    exact_sums_oracle,
    sum_sample_size,
    top_k_sums_ec,
    top_k_sums_pac,
)

__all__ = [
    "DistKeyValue",
    "SumAggResult",
    "exact_sums_oracle",
    "sum_sample_size",
    "top_k_sums_ec",
    "top_k_sums_pac",
]
