"""Top-k sum aggregation (Section 8).

Input: (key, value) pairs with non-negative values, distributed over the
PEs; wanted: the ``k`` keys with the largest value *sums* -- e.g. the
top revenue products across a sharded sales log.

The frequent-objects machinery carries over once sampling is done by
*value mass* instead of by occurrence (Section 8.1):

1. each PE aggregates its local pairs into a key -> local-sum table
   ("sample the aggregate counts ... the number of samples deviates
   from its expected value by at most 1" per key and PE -- the property
   Theorem 15's Hoeffding bound needs);
2. a key with local sum ``v`` contributes ``floor(v/v_avg) +
   Bernoulli(frac(v/v_avg))`` sample units, where ``v_avg = m / s`` for
   global value mass ``m`` and target sample size
   ``s = (1/eps) sqrt(2 p ln(2 n / delta))``;
3. sample units are counted in the distributed hash table and the top-k
   selected exactly as in Algorithm PAC;
4. (EC variant) the ``k* >= k`` most heavily sampled keys get *exact*
   sums: identities are all-gathered and each PE answers from its local
   aggregation table -- one ``O(1)`` lookup per key, no second input
   scan needed (the Section 8.2 remark).

Expected time ``O(n/p + beta log(p)/eps sqrt(1/p) log(n/delta)
+ alpha log n)`` (Theorem 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.sampling import weighted_sample_counts
from ..common.validation import check_probability
from ..machine import DistArray, Machine
from ..frequent.dht import take_topk_entries
from ..common.hashing import make_owner_fn

__all__ = [
    "DistKeyValue",
    "SumAggResult",
    "top_k_sums_pac",
    "top_k_sums_ec",
    "exact_sums_oracle",
    "sum_sample_size",
]


class _SumAggState:
    """Per-PE resident state: the raw (key, value) pairs plus a cached
    key -> local-sum aggregation table (built on first use, next to the
    data; the EC variant reuses it for its exact-sum lookups, the
    Section 8.2 "no second input scan" remark)."""

    __slots__ = ("keys", "values", "agg")

    def __init__(self, keys: np.ndarray, values: np.ndarray):
        self.keys = keys
        self.values = values
        self.agg: tuple | None = None

    def aggregate(self) -> tuple[tuple[np.ndarray, np.ndarray], bool]:
        """Key -> local-sum table; returns ``(table, computed_now)``."""
        if self.agg is not None:
            return self.agg, False
        if self.keys.size == 0:
            self.agg = (np.empty(0, dtype=np.int64), np.empty(0))
        else:
            uniq, inverse = np.unique(self.keys, return_inverse=True)
            sums = np.zeros(uniq.size)
            np.add.at(sums, inverse, self.values)
            self.agg = (uniq, sums)
        return self.agg, True


def _sample_step(rank: int, state: _SumAggState, v_avg: float, addr):
    """Stages 1-2, resident: aggregate (cached) + value-weighted sample.

    The Bernoulli rounding draws come from this PE's counter-addressed
    stream (``addr.local(rank)``); only the small sample dict and counts
    return -- the pairs and the aggregation table stay with the worker.
    """
    (uniq, sums), fresh = state.aggregate()
    if uniq.size == 0:
        return ({}, 0, 0, fresh)
    counts = weighted_sample_counts(addr.local(rank), sums, v_avg)
    nz = counts > 0
    sample = {int(key): int(c) for key, c in zip(uniq[nz], counts[nz])}
    return (sample, int(counts.sum()), int(uniq.size), fresh)


def _exact_lookup_step(rank: int, state: _SumAggState, cand_keys: np.ndarray):
    """EC stage 4, resident: one table lookup per candidate key."""
    (uniq, sums), fresh = state.aggregate()
    pos = np.searchsorted(uniq, cand_keys)
    pos = np.clip(pos, 0, max(uniq.size - 1, 0))
    if uniq.size:
        hit = uniq[pos] == cand_keys
        vals = np.where(hit, sums[pos], 0.0)
    else:
        vals = np.zeros(len(cand_keys))
    return (vals, int(uniq.size), fresh)


class DistKeyValue:
    """Distributed (key, value) pairs: one key chunk + value chunk per PE.

    The chunks are pinned resident in the machine's execution backend on
    first use; the sum-aggregation pipelines aggregate, sample and look
    up exact sums *where the pairs live* and only key -> count summaries
    travel.
    """

    def __init__(self, machine: Machine, keys, values):
        if len(keys) != machine.p or len(values) != machine.p:
            raise ValueError("need one keys chunk and one values chunk per PE")
        self.machine = machine
        self.keys = [np.asarray(c, dtype=np.int64) for c in keys]
        self.values = [np.asarray(v, dtype=np.float64) for v in values]
        for i, (key_c, val_c) in enumerate(zip(self.keys, self.values)):
            if key_c.shape != val_c.shape:
                raise ValueError(f"chunk {i}: keys and values differ in length")
            if np.any(val_c < 0):
                raise ValueError(f"chunk {i}: sum aggregation needs non-negative values")
        self._ref = None

    def _ensure_ref(self):
        """Pin the per-PE state in the backend (no-op if already done)."""
        if self._ref is None:
            self._ref = self.machine.backend.put_chunks(
                [_SumAggState(k, v) for k, v in zip(self.keys, self.values)]
            )
        return self._ref

    @classmethod
    def generate(cls, machine: Machine, make_chunk) -> "DistKeyValue":
        """``make_chunk(rank, rng) -> (keys, values)`` per PE."""
        pairs = [make_chunk(i, machine.rngs[i]) for i in range(machine.p)]
        return cls(machine, [p_[0] for p_ in pairs], [p_[1] for p_ in pairs])

    @property
    def global_size(self) -> int:
        return int(sum(c.size for c in self.keys))

    def local_aggregate(self, rank: int) -> tuple[np.ndarray, np.ndarray]:
        """Key -> local-sum aggregation of one PE's pairs (charged)."""
        key_c, val_c = self.keys[rank], self.values[rank]
        if key_c.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        uniq, inverse = np.unique(key_c, return_inverse=True)
        sums = np.zeros(uniq.size)
        np.add.at(sums, inverse, val_c)
        self.machine.charge_ops_one(rank, key_c.size * np.log2(max(key_c.size, 2)))
        return uniq, sums


@dataclass(frozen=True)
class SumAggResult:
    """Top-k keys by value sum.

    ``items`` are ``(key, sum)`` pairs, largest sum first; sums are
    exact iff ``exact_sums`` (EC variant) and otherwise estimates
    ``sample_units * v_avg``.
    """

    items: tuple[tuple[int, float], ...]
    exact_sums: bool
    v_avg: float
    sample_size: int
    k_star: int
    info: dict = field(default_factory=dict)

    @property
    def keys(self) -> tuple[int, ...]:
        return tuple(key for key, _ in self.items)


def sum_sample_size(n: int, p: int, eps: float, delta: float) -> float:
    """Target sample size of Theorem 15: ``s >= (1/eps) sqrt(2 p ln(2n/delta))``."""
    check_probability(eps, "eps")
    check_probability(delta, "delta")
    return (1.0 / eps) * np.sqrt(2.0 * p * np.log(2.0 * max(n, 2) / delta))


def _safe_v_avg(m_total: float, s: float) -> float:
    """Per-sample mass ``m_total / s``, clamped away from zero: for
    subnormal total masses the division can underflow to 0.0, which
    :func:`weighted_sample_counts` (rightly) rejects."""
    return max(m_total / s, float(np.finfo(np.float64).tiny))


def _sample_to_dht(machine: Machine, data: DistKeyValue, v_avg: float):
    """Stages 1-3: aggregate, value-weighted sample, DHT count.

    Aggregation and sampling run as a resident callback next to the
    pairs; the rounding draws are counter-addressed (one draw address
    per pass), so the sequence is identical on every backend and
    nothing but the tiny address ships.
    """
    p = machine.p
    addr = machine.draw_addr()
    _, vals, _ = machine.backend.map_resident(
        _sample_step,
        [data._ensure_ref()],
        n_out=0,
        args=[(v_avg, addr)] * p,
    )
    sample_dicts = []
    realized = 0
    for i, (sample, real_i, uniq_size, fresh) in enumerate(vals):
        if fresh:  # the aggregation table was built in this pass
            ks = int(data.keys[i].size)
            if ks:
                machine.charge_ops_one(i, ks * np.log2(max(ks, 2)))
        if uniq_size:
            machine.charge_ops_one(i, uniq_size)
        sample_dicts.append(sample)
        realized += real_i
    owner = make_owner_fn(p)
    routed = machine.aggregate_exchange(sample_dicts, owner)
    return routed, realized


def top_k_sums_pac(
    machine: Machine,
    data: DistKeyValue,
    k: int,
    eps: float = 1e-3,
    delta: float = 1e-4,
    *,
    sample_size: float | None = None,
) -> SumAggResult:
    """(eps, delta)-approximate top-k sums (Theorem 15)."""
    n = int(machine.allreduce([c.size for c in data.keys], op="sum")[0])
    if n == 0:
        return SumAggResult((), True, 1.0, 0, k, {})
    local_mass = [float(v.sum()) for v in data.values]
    m_total = float(machine.allreduce(local_mass, op="sum")[0])
    if m_total == 0.0:
        return SumAggResult((), True, 1.0, 0, k, {"mass": 0.0})
    s = sample_size if sample_size is not None else sum_sample_size(n, machine.p, eps, delta)
    v_avg = _safe_v_avg(m_total, s)
    routed, realized = _sample_to_dht(machine, data, v_avg)
    items = take_topk_entries(machine, routed, k)
    return SumAggResult(
        items=tuple((key, c * v_avg) for key, c in items),
        exact_sums=False,
        v_avg=v_avg,
        sample_size=realized,
        k_star=k,
        info={"mass": m_total, "target_sample": s},
    )


def top_k_sums_ec(
    machine: Machine,
    data: DistKeyValue,
    k: int,
    eps: float = 1e-3,
    delta: float = 1e-4,
    *,
    k_star: int | None = None,
    sample_size: float | None = None,
) -> SumAggResult:
    """Top-k sums with exact sums for the winners (Section 8.2).

    Unlike frequent-objects EC, no second pass over the raw input is
    needed: the local aggregation tables already hold each key's local
    sum, so exact global sums are one lookup plus one vector reduction.
    """
    p = machine.p
    n = int(machine.allreduce([c.size for c in data.keys], op="sum")[0])
    if n == 0:
        return SumAggResult((), True, 1.0, 0, k, {})
    if k_star is None:
        comm_opt = (1.0 / eps) * np.sqrt(2.0 * np.log2(p + 1) / p * np.log(max(n, 2) / delta))
        k_star = int(max(k, np.ceil(comm_opt)))
    local_mass = [float(v.sum()) for v in data.values]
    m_total = float(machine.allreduce(local_mass, op="sum")[0])
    if m_total == 0.0:
        return SumAggResult((), True, 1.0, 0, k_star, {"mass": 0.0})
    if sample_size is None:
        # the reduced EC rate: a factor k* fewer sample units suffice
        sample_size = max(
            16.0, sum_sample_size(n, p, eps, delta) / np.sqrt(max(k_star, 1))
        )
    v_avg = _safe_v_avg(m_total, sample_size)
    routed, realized = _sample_to_dht(machine, data, v_avg)
    candidates = take_topk_entries(machine, routed, k_star)
    if not candidates:
        return SumAggResult((), True, v_avg, realized, k_star, {})
    cand_keys = np.array([key for key, _ in candidates], dtype=np.int64)

    # exact sums from the resident aggregation tables (one lookup per
    # key, answered where the pairs live -- no second input scan)
    _, lookups, _ = machine.backend.map_resident(
        _exact_lookup_step,
        [data._ensure_ref()],
        n_out=0,
        args=[(cand_keys,)] * p,
    )
    per_pe = []
    for i, (vals, uniq_size, fresh) in enumerate(lookups):
        if fresh:  # only if the sampling pass never built the table
            ks = int(data.keys[i].size)
            if ks:
                machine.charge_ops_one(i, ks * np.log2(max(ks, 2)))
        machine.charge_ops_one(i, max(1.0, len(cand_keys) * np.log2(max(uniq_size, 2))))
        per_pe.append(vals)
    exact = np.asarray(machine.allreduce(per_pe, op="sum")[0])
    order = np.lexsort((cand_keys, -exact))
    top = order[: min(k, len(cand_keys))]
    items = tuple((int(cand_keys[t]), float(exact[t])) for t in top)
    return SumAggResult(
        items=items,
        exact_sums=True,
        v_avg=v_avg,
        sample_size=realized,
        k_star=int(k_star),
        info={"mass": m_total, "candidates": len(candidates)},
    )


def exact_sums_oracle(data: DistKeyValue) -> dict[int, float]:
    """Driver-side exact key sums (test oracle)."""
    keys = np.concatenate(data.keys) if data.keys else np.empty(0, dtype=np.int64)
    values = np.concatenate(data.values) if data.values else np.empty(0)
    if keys.size == 0:
        return {}
    uniq, inverse = np.unique(keys, return_inverse=True)
    sums = np.zeros(uniq.size)
    np.add.at(sums, inverse, values)
    return {int(key): float(s) for key, s in zip(uniq, sums)}
