"""Bulk-parallel priority queues (Section 5) and baselines."""

from .bulk_pq import BulkParallelPQ, DeleteMinResult, TreapSeq
from .heap import BinaryHeap
from .karp_zhang import RandomAllocPQ

__all__ = [
    "BinaryHeap",
    "BulkParallelPQ",
    "DeleteMinResult",
    "RandomAllocPQ",
    "TreapSeq",
]
