"""Sequential binary min-heap (baseline substrate).

A from-scratch array heap used (a) as the local queue of the
Karp-Zhang-style baseline and (b) as the sequential best-first reference
in the branch-and-bound application.  Supports ``push``, ``pop``,
``peek``, bulk construction in O(n) and ``pop_k``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["BinaryHeap"]


class BinaryHeap:
    """Array-based binary min-heap over arbitrary comparable keys."""

    def __init__(self, items: Iterable = ()):  # O(n) heapify
        self._a: list = list(items)
        for i in range(len(self._a) // 2 - 1, -1, -1):
            self._sift_down(i)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._a)

    def __bool__(self) -> bool:
        return bool(self._a)

    def peek(self):
        if not self._a:
            raise IndexError("peek on empty heap")
        return self._a[0]

    def push(self, key) -> None:
        self._a.append(key)
        self._sift_up(len(self._a) - 1)

    def pop(self):
        if not self._a:
            raise IndexError("pop on empty heap")
        a = self._a
        top = a[0]
        last = a.pop()
        if a:
            a[0] = last
            self._sift_down(0)
        return top

    def pop_k(self, k: int) -> list:
        """Remove and return the ``min(k, len)`` smallest keys, ascending."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        return [self.pop() for _ in range(min(k, len(self._a)))]

    def pushpop(self, key):
        """Push then pop, in one sift (faster than the pair)."""
        if self._a and self._a[0] < key:
            key, self._a[0] = self._a[0], key
            self._sift_down(0)
        return key

    def items(self) -> Iterator:
        """Unordered iteration over the current content."""
        return iter(self._a)

    # ------------------------------------------------------------------
    def _sift_up(self, i: int) -> None:
        a = self._a
        item = a[i]
        while i > 0:
            parent = (i - 1) >> 1
            if a[parent] <= item:
                break
            a[i] = a[parent]
            i = parent
        a[i] = item

    def _sift_down(self, i: int) -> None:
        a = self._a
        n = len(a)
        item = a[i]
        while True:
            child = 2 * i + 1
            if child >= n:
                break
            if child + 1 < n and a[child + 1] < a[child]:
                child += 1
            if item <= a[child]:
                break
            a[i] = a[child]
            i = child
        a[i] = item

    def check_invariants(self) -> None:
        """Assert the heap property (test hook)."""
        a = self._a
        for i in range(1, len(a)):
            assert a[(i - 1) >> 1] <= a[i], f"heap violated at {i}"
