"""Communication-efficient bulk-parallel priority queue (Section 5).

The queue keeps one search tree per PE and **never moves elements**:

* ``insert*`` puts new elements into the *local* tree -- zero
  communication, ``O(log n)`` time per element.  (Previous designs --
  Karp-Zhang random allocation [20], the randomized PQ of [31] -- send
  every insertion to a random PE.)
* ``deleteMin*`` runs the multisequence selection algorithms of
  Section 4 directly **on the trees**: the search tree supports
  ``select`` (i-th smallest) and ``rank`` in logarithmic time, which is
  all ``msSelect``/``amsSelect`` need from a "sorted sequence".  The
  selected per-PE prefixes are then split off the trees.

Execution is resident: the treaps live in the execution backend's
worker memory behind a :class:`~repro.machine.backends.base.ChunkRef`
handle.  Insertions are buffered driver-side and flushed as one
resident callback; a ``deleteMin*`` is a single generator SPMD step
(:meth:`Backend.run_spmd`) in which the whole multisequence-selection
recursion -- pivot draws, rank counts, tie granting and the final tree
split -- executes next to the trees.  All randomness (treap rotation
priorities, pivot and estimator draws) is counter-addressed
(:mod:`repro.machine.ctrrng`): each command ships a tiny draw address
and the kernels derive identical streams in place, so backends stay
bit-identical with no generator state on the wire -- which is also why
every ``deleteMin*`` can enter the pipe right behind an in-flight
insertion flush.  Only the extracted batches and a small charge log
(replayed through :meth:`Machine.replay_charges`) return to the
driver.

Costs (Theorem 5): ``O(alpha log^2 kp)`` for fixed batch size ``k``,
``O(alpha log kp)`` for flexible batch size in ``[k_lo, k_hi]`` with
``k_hi - k_lo = Omega(k_hi)``, and ``O(d log k + beta d + alpha log p)``
with ``d`` concurrent trials.

Elements are ``(score, uid)`` pairs -- ``uid`` a per-PE counter tagged
with the rank -- so the total order is unique (Section 2's tie-breaking
convention).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..common.ordering import TOP
from ..common.validation import check_rank_range
from ..kernels import ArrayTreap, effective_mode
from ..machine import Machine
from ..selection.flexible import ams_select_gen
from ..selection.sorted_select import ms_select_with_cuts_gen
from ..trees import Treap

__all__ = ["BulkParallelPQ", "TreapSeq", "DeleteMinResult"]


class TreapSeq:
    """A :class:`~repro.trees.Treap` viewed as a sorted sequence.

    Adapter for the selection algorithms: ``item`` is tree-select,
    ``count_le`` is tree-rank, both ``O(log n)`` (``O(log k)`` with the
    paper's min/max-path augmentation, which :meth:`Treap.access_cost`
    models for the cost accounting).
    """

    __slots__ = ("tree",)

    def __init__(self, tree: Treap):
        self.tree = tree

    def __len__(self) -> int:
        return len(self.tree)

    def item(self, i: int):
        return self.tree.select(i)

    def count_le(self, v) -> int:
        return self.tree.count_le(v)


@dataclass(frozen=True)
class DeleteMinResult:
    """Outcome of a ``deleteMin*`` call.

    ``batches[i]`` holds the extracted elements of PE ``i`` in ascending
    order; they remain on their PE (the paper's owner-computes
    convention -- redistribution, if the application needs it, is a
    separate step, cf. Section 9).
    """

    batches: tuple[tuple, ...]
    k: int
    threshold: object
    rounds: int


# ----------------------------------------------------------------------
# Resident worker callbacks (module-level so real backends can ship them)
# ----------------------------------------------------------------------

def _make_tree(rank: int) -> tuple:
    """Per-PE resident state: one (initially empty) tree.

    The tree *kind* follows the worker's kernel mode: the pointer
    :class:`~repro.trees.Treap` in python mode, the sorted-array
    :class:`~repro.kernels.ArrayTreap` in native mode.  Every output the
    queue observes from its tree is structure-independent (see
    :mod:`repro.kernels.treap`), so the two are bit-interchangeable --
    including rng consumption (one priority draw per insert).
    """
    if effective_mode() == "native":
        return (ArrayTreap(None), None)
    return (Treap(None), None)


def _insert_step(rank: int, tree: Treap, scores, first_uid, addr):
    """Flush this PE's buffered insertions into its resident tree.

    ``scores`` arrives as a binary float array (cheap on the wire) with
    uids reconstructed from ``first_uid`` -- buffered insertions number
    their uids contiguously per PE.  The treap's rotation priorities
    come from this flush's counter-addressed per-PE stream
    (``addr.local(rank)``), so the draw sequence is a pure function of
    the flush's issue-order address -- identical on every backend, with
    nothing to ship back.
    """
    if scores is None or len(scores) == 0:
        return None
    tree._rng = addr.local(rank)
    tree.insert_batch(scores, rank, int(first_uid))
    return None


def _peek_step(rank: int, tree: Treap):
    return tree.min() if len(tree) else TOP


def _delete_min_kernel(rank: int, tree: Treap, k: int, p: int, addr):
    """``deleteMin`` as ONE SPMD step: exact multisequence selection on
    the resident trees (Theorem 5's ``O(alpha log^2 kp)`` recursion runs
    entirely in-worker), tie-grant, tree split, batch extraction.  The
    replicated pivot stream is derived in place from ``addr``."""
    log: list = []
    value, cut, _ = yield from ms_select_with_cuts_gen(
        rank, p, TreapSeq(tree), k, addr.shared(), log
    )
    taken = tree.split_at_rank(int(cut))
    batch = tuple((key[0], key[1]) for key in taken)
    log.append(("ops", max(1.0, cut * tree.access_cost(k))))
    return {
        "batch": batch,
        "value": value,
        "log": log,
    }


def _delete_flex_kernel(
    rank: int, tree: Treap, k_lo: int, k_hi: int, p: int, addr
):
    """``deleteMin*`` with flexible batch size, resident: ``amsSelect``'s
    estimator rounds draw from this PE's counter-addressed stream
    (``addr.local(rank)``) and the shared stream only if the exact
    fallback fires."""
    log: list = []
    value, k_hat, cut, rounds, _ = yield from ams_select_gen(
        rank, p, TreapSeq(tree), k_lo, k_hi, addr.local(rank), addr.shared(), log
    )
    taken = tree.split_at_rank(int(cut))
    batch = tuple((key[0], key[1]) for key in taken)
    log.append(("ops", max(1.0, cut * tree.access_cost(k_hat))))
    return {
        "batch": batch,
        "value": value,
        "k": k_hat,
        "rounds": rounds,
        "log": log,
    }


class BulkParallelPQ:
    """Distributed bulk priority queue over ``machine.p`` worker-resident
    trees."""

    def __init__(self, machine: Machine):
        self.machine = machine
        refs, _, _ = machine.backend.map_resident(
            _make_tree, [], n_out=1, args=[()] * machine.p
        )
        self._ref = refs[0]
        self._uid = [0] * machine.p
        self._sizes = [0] * machine.p  # driver-tracked (resident + pending)
        self._pending: list[list] = [[] for _ in range(machine.p)]

    # ------------------------------------------------------------------
    # Insertion: local, communication-free (buffered driver-side and
    # flushed as one resident callback before the next tree query)
    # ------------------------------------------------------------------
    def insert(self, per_pe_scores) -> None:
        """``insert*``: bulk-insert scores, each batch into its own PE.

        ``per_pe_scores[i]`` is an iterable of priorities generated on PE
        ``i``.  No communication is charged -- that is the point of the
        data structure.
        """
        if len(per_pe_scores) != self.machine.p:
            raise ValueError(
                f"need one insertion batch per PE (p={self.machine.p}, "
                f"got {len(per_pe_scores)})"
            )
        for i, scores in enumerate(per_pe_scores):
            self.insert_local(i, scores)

    def insert_local(self, rank: int, scores) -> list[tuple[int, int]]:
        """Insert elements on a single PE (e.g. children in B&B).

        Returns the assigned uids ``(rank, counter)`` so applications can
        attach satellite data in per-PE side tables.
        """
        ops = 0.0
        uids = []
        n = self._sizes[rank]
        for s in scores:
            uids.append((rank, self._uid[rank]))
            self._pending[rank].append(float(s))
            self._uid[rank] += 1
            n += 1
            ops += math.log2(max(n, 2))
        self._sizes[rank] = n
        if ops:
            self.machine.charge_ops_one(rank, ops)
        return uids

    def _flush_submit(self):
        """Ship buffered insertions into the resident trees without
        waiting (one backend round trip for any number of buffered
        batches).  Returns a handle for :meth:`_settle_flush`, or
        ``None`` when nothing was buffered.  While the flush is in
        flight a *later* command may already be submitted -- workers
        execute commands in seq order -- and since the treap priorities
        are counter-addressed (one draw address per flush) the handle
        carries no rng state back; settling in submit order is still
        required by the :class:`PendingValues` contract (charge replay
        order)."""
        if not any(self._pending):
            return None
        machine = self.machine
        addr = machine.draw_addr()
        args = []
        for i in range(machine.p):
            batch = self._pending[i]
            if batch:
                args.append((
                    np.asarray(batch, dtype=np.float64),
                    self._uid[i] - len(batch),
                    addr,
                ))
            else:
                args.append((None, 0, None))
        self._pending = [[] for _ in range(machine.p)]
        _, pending = machine.backend.submit_map_resident(
            _insert_step, [self._ref], n_out=0, args=args
        )
        return pending

    def _settle_flush(self, pending) -> None:
        """Collect an in-flight flush (settle in submit order)."""
        if pending is None:
            return
        pending.wait()

    def _flush(self) -> None:
        self._settle_flush(self._flush_submit())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def total_size(self) -> int:
        """Global element count (one all-reduction)."""
        return int(self.machine.allreduce(list(self._sizes), op="sum")[0])

    def peek_min(self):
        """Globally smallest score without removing it (one reduction,
        fused into the resident lookup's round trip)."""
        # argument-free lookup: safe to issue while the flush is in
        # flight (same overlapped pattern as delete_min)
        flush = self._flush_submit()
        _, pending = self.machine.backend.submit_map_resident(
            _peek_step, [self._ref], n_out=0, collect=("allreduce", "min")
        )
        self._settle_flush(flush)
        values, collected = pending.wait()
        self.machine._meter_allreduce(values)
        v = collected[0]
        if v is TOP:
            raise IndexError("peek_min on empty queue")
        return v[0]

    def local_sizes(self) -> list[int]:
        return list(self._sizes)

    @property
    def trees(self) -> list[Treap]:
        """Driver-side view of the resident trees (live objects on the
        in-process backend, fetched copies on real backends; tests and
        debugging only -- the algorithms never move the trees)."""
        self._flush()
        return list(self.machine.backend.get_chunks(self._ref))

    # ------------------------------------------------------------------
    # deleteMin*
    # ------------------------------------------------------------------
    def delete_min(self, k: int) -> DeleteMinResult:
        """Remove exactly the ``k`` globally smallest elements.

        Runs exact multisequence selection (``O(alpha log^2 kp)``,
        Theorem 5) on the resident trees and splits each tree at its cut
        rank -- one SPMD worker command end to end.
        """
        total = self.total_size()
        if not 1 <= k <= total:
            raise ValueError(f"k must satisfy 1 <= k <= {total}, got {k}")
        machine = self.machine
        p = machine.p
        # overlapped issue: every draw is counter-addressed, so the
        # deleteMin command enters the pipe right behind the flush
        # (workers execute in seq order) instead of stalling on the
        # flush's round trip -- and both submits ride one command frame
        with machine.backend.coalesced():
            flush = self._flush_submit()
            addr = machine.draw_addr()
            _, pending = machine.backend.submit_spmd(
                _delete_min_kernel, [self._ref], n_out=0,
                args=[(k, p, addr)] * p,
            )
        self._settle_flush(flush)  # settle in submit order
        vals = pending.wait()
        machine.replay_charges([v["log"] for v in vals])
        return self._finish(vals, k, vals[0]["value"], rounds=0)

    def delete_min_flexible(self, k_lo: int, k_hi: int) -> DeleteMinResult:
        """Remove the k̂ smallest elements for some ``k̂ in [k_lo, k_hi]``.

        Uses ``amsSelect``; with ``k_hi - k_lo = Omega(k_hi)`` this runs
        in ``O(alpha log kp)`` expected (Theorem 5's flexible variant).
        """
        check_rank_range(k_lo, k_hi, sum(self._sizes))  # fail driver-side
        machine = self.machine
        p = machine.p
        # counter addressing freed this path to overlap too: amsSelect's
        # args are just a draw address (the estimator streams no longer
        # depend on how far the flush advanced any generator), so the
        # kernel pipelines right behind the in-flight flush
        with machine.backend.coalesced():
            flush = self._flush_submit()
            addr = machine.draw_addr()
            _, pending = machine.backend.submit_spmd(
                _delete_flex_kernel, [self._ref], n_out=0,
                args=[(k_lo, k_hi, p, addr)] * p,
            )
        self._settle_flush(flush)  # settle in submit order
        vals = pending.wait()
        machine.replay_charges([v["log"] for v in vals])
        return self._finish(vals, vals[0]["k"], vals[0]["value"], vals[0]["rounds"])

    def _finish(self, vals, k: int, threshold, rounds: int) -> DeleteMinResult:
        batches = tuple(v["batch"] for v in vals)
        for i, batch in enumerate(batches):
            self._sizes[i] -= len(batch)
        return DeleteMinResult(batches, k, threshold, rounds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BulkParallelPQ(p={self.machine.p}, sizes={self.local_sizes()})"
