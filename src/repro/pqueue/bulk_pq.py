"""Communication-efficient bulk-parallel priority queue (Section 5).

The queue keeps one search tree per PE and **never moves elements**:

* ``insert*`` puts new elements into the *local* tree -- zero
  communication, ``O(log n)`` time per element.  (Previous designs --
  Karp-Zhang random allocation [20], the randomized PQ of [31] -- send
  every insertion to a random PE.)
* ``deleteMin*`` runs the multisequence selection algorithms of
  Section 4 directly **on the trees**: the search tree supports
  ``select`` (i-th smallest) and ``rank`` in logarithmic time, which is
  all ``msSelect``/``amsSelect`` need from a "sorted sequence".  The
  selected per-PE prefixes are then split off the trees.

Costs (Theorem 5): ``O(alpha log^2 kp)`` for fixed batch size ``k``,
``O(alpha log kp)`` for flexible batch size in ``[k_lo, k_hi]`` with
``k_hi - k_lo = Omega(k_hi)``, and ``O(d log k + beta d + alpha log p)``
with ``d`` concurrent trials.

Elements are ``(score, uid)`` pairs -- ``uid`` a per-PE counter tagged
with the rank -- so the total order is unique (Section 2's tie-breaking
convention).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine import Machine
from ..selection.flexible import AmsResult, ams_select
from ..selection.sorted_select import ms_select_with_cuts
from ..trees import Treap

__all__ = ["BulkParallelPQ", "TreapSeq", "DeleteMinResult"]


class TreapSeq:
    """A :class:`~repro.trees.Treap` viewed as a sorted sequence.

    Adapter for the selection algorithms: ``item`` is tree-select,
    ``count_le`` is tree-rank, both ``O(log n)`` (``O(log k)`` with the
    paper's min/max-path augmentation, which :meth:`Treap.access_cost`
    models for the cost accounting).
    """

    __slots__ = ("tree",)

    def __init__(self, tree: Treap):
        self.tree = tree

    def __len__(self) -> int:
        return len(self.tree)

    def item(self, i: int):
        return self.tree.select(i)

    def count_le(self, v) -> int:
        return self.tree.count_le(v)


@dataclass(frozen=True)
class DeleteMinResult:
    """Outcome of a ``deleteMin*`` call.

    ``batches[i]`` holds the extracted elements of PE ``i`` in ascending
    order; they remain on their PE (the paper's owner-computes
    convention -- redistribution, if the application needs it, is a
    separate step, cf. Section 9).
    """

    batches: tuple[tuple, ...]
    k: int
    threshold: object
    rounds: int


class BulkParallelPQ:
    """Distributed bulk priority queue over ``machine.p`` local trees."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.trees = [Treap(machine.rngs[i]) for i in range(machine.p)]
        self._uid = [0] * machine.p

    # ------------------------------------------------------------------
    # Insertion: local, communication-free
    # ------------------------------------------------------------------
    def insert(self, per_pe_scores) -> None:
        """``insert*``: bulk-insert scores, each batch into its own PE.

        ``per_pe_scores[i]`` is an iterable of priorities generated on PE
        ``i``.  No communication is charged -- that is the point of the
        data structure.
        """
        if len(per_pe_scores) != self.machine.p:
            raise ValueError(
                f"need one insertion batch per PE (p={self.machine.p}, "
                f"got {len(per_pe_scores)})"
            )
        for i, scores in enumerate(per_pe_scores):
            tree = self.trees[i]
            ops = 0.0
            for s in scores:
                tree.insert((s, (i, self._uid[i])))
                self._uid[i] += 1
                ops += tree.access_cost()
            if ops:
                self.machine.charge_ops_one(i, ops)

    def insert_local(self, rank: int, scores) -> list[tuple[int, int]]:
        """Insert elements on a single PE (e.g. children in B&B).

        Returns the assigned uids ``(rank, counter)`` so applications can
        attach satellite data in per-PE side tables.
        """
        tree = self.trees[rank]
        ops = 0.0
        uids = []
        for s in scores:
            uid = (rank, self._uid[rank])
            tree.insert((s, uid))
            uids.append(uid)
            self._uid[rank] += 1
            ops += tree.access_cost()
        if ops:
            self.machine.charge_ops_one(rank, ops)
        return uids

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def total_size(self) -> int:
        """Global element count (one all-reduction)."""
        return int(self.machine.allreduce([len(t) for t in self.trees], op="sum")[0])

    def peek_min(self):
        """Globally smallest score without removing it (one reduction)."""
        from ..common.ordering import TOP

        mins = [t.min() if len(t) else TOP for t in self.trees]
        v = self.machine.allreduce(mins, op="min")[0]
        if v is TOP:
            raise IndexError("peek_min on empty queue")
        return v[0]

    def local_sizes(self) -> list[int]:
        return [len(t) for t in self.trees]

    # ------------------------------------------------------------------
    # deleteMin*
    # ------------------------------------------------------------------
    def delete_min(self, k: int) -> DeleteMinResult:
        """Remove exactly the ``k`` globally smallest elements.

        Runs exact multisequence selection (``O(alpha log^2 kp)``,
        Theorem 5) on the trees and splits each tree at its cut rank.
        """
        total = self.total_size()
        if not 1 <= k <= total:
            raise ValueError(f"k must satisfy 1 <= k <= {total}, got {k}")
        seqs = [TreapSeq(t) for t in self.trees]
        value, cuts = ms_select_with_cuts(self.machine, seqs, k)
        return self._extract(cuts, k, value, rounds=0)

    def delete_min_flexible(self, k_lo: int, k_hi: int) -> DeleteMinResult:
        """Remove the k̂ smallest elements for some ``k̂ in [k_lo, k_hi]``.

        Uses ``amsSelect``; with ``k_hi - k_lo = Omega(k_hi)`` this runs
        in ``O(alpha log kp)`` expected (Theorem 5's flexible variant).
        """
        seqs = [TreapSeq(t) for t in self.trees]
        res: AmsResult = ams_select(self.machine, seqs, k_lo, k_hi)
        return self._extract(list(res.cuts), res.k, res.value, res.rounds)

    def _extract(self, cuts, k: int, threshold, rounds: int) -> DeleteMinResult:
        batches = []
        for i, c in enumerate(cuts):
            taken = self.trees[i].split_at_rank(int(c))
            batch = tuple((key[0], key[1]) for key in taken)
            batches.append(batch)
            self.machine.charge_ops_one(
                i, max(1.0, c * self.trees[i].access_cost(k))
            )
        return DeleteMinResult(tuple(batches), k, threshold, rounds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BulkParallelPQ(p={self.machine.p}, sizes={self.local_sizes()})"
