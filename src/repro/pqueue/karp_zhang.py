"""Random-allocation bulk priority queue (Karp-Zhang [20] / Sanders [31]).

The baseline the paper improves on: every inserted element is *sent to a
random PE*, which keeps each local queue a representative sample of the
global content (so bulk deletions are easy and provably balanced) but
costs ``Theta(beta * k / p + alpha)`` communication per inserted batch --
the communication the Section 5 queue eliminates entirely.

Like :class:`~repro.pqueue.bulk_pq.BulkParallelPQ`, the local heaps are
worker-resident: an ``insert`` routes the batch worker-to-worker in one
sparse direct exchange (the random destinations come from the
counter-addressed per-PE streams, identical on every backend), and
``deleteMin*`` -- exact multisequence selection over sorted snapshots,
as in [31] -- runs as one generator SPMD step next to the heaps.
Comparing :class:`RandomAllocPQ` against the Section 5 queue in
``benchmarks/bench_priority_queue.py`` reproduces the Table 1 contrast
(old: ``log(n/k) + alpha*(k/p + log p)`` insert+delete vs. new:
``alpha log kp``).
"""

from __future__ import annotations

import numpy as np

from ..machine import Machine
from ..selection.sorted_select import ms_select_with_cuts_gen
from .heap import BinaryHeap

__all__ = ["RandomAllocPQ"]


class _HeapSeq:
    """Sorted-sequence view of a heap via a lazily sorted snapshot."""

    __slots__ = ("snapshot",)

    def __init__(self, heap: BinaryHeap):
        self.snapshot = sorted(heap.items())

    def __len__(self) -> int:
        return len(self.snapshot)

    def item(self, i: int):
        return self.snapshot[i]

    def count_le(self, v) -> int:
        import bisect

        return bisect.bisect_right(self.snapshot, v)


# ----------------------------------------------------------------------
# Resident worker callbacks (module-level so real backends can ship them)
# ----------------------------------------------------------------------

def _make_heap(rank: int) -> tuple:
    return (BinaryHeap(), None)


def _kz_insert_kernel(rank: int, heap: BinaryHeap, buckets, srcs, p: int):
    """Route this PE's randomly-addressed items worker-to-worker and
    deliver arrivals into the local heap (the communication this design
    pays and Section 5's avoids)."""
    row: list = [None] * p
    for dst, items in buckets:
        row[dst] = items
    received = yield ("sendrecv", row, srcs)
    ops = 0.0
    for src in range(p):
        items = received[src]
        if not items:
            continue
        for item in items:
            heap.push(tuple(item))
        ops += len(items) * np.log2(max(len(heap), 2))
    return ops


def _kz_delete_kernel(rank: int, heap: BinaryHeap, k: int, p: int, addr):
    """Exact ``deleteMin`` of [31] as one SPMD step: snapshot-sort the
    local heap, multisequence-select over the snapshots, pop the cut.
    The replicated pivot stream is derived in place from ``addr``."""
    log: list = []
    seq = _HeapSeq(heap)
    # snapshot sort models the heap-ordered scan of [31]
    log.append(("ops", max(1.0, min(len(seq), k) * np.log2(max(len(seq), 2)))))
    _, cut, _ = yield from ms_select_with_cuts_gen(
        rank, p, seq, k, addr.shared(), log
    )
    batch = tuple((b[0], b[1]) for b in heap.pop_k(int(cut)))
    log.append(("ops", max(1.0, cut * np.log2(max(len(heap) + cut, 2)))))
    return {"batch": batch, "log": log}


class RandomAllocPQ:
    """Bulk PQ with randomized element placement (the [20]/[31] design)."""

    def __init__(self, machine: Machine):
        self.machine = machine
        refs, _, _ = machine.backend.map_resident(
            _make_heap, [], n_out=1, args=[()] * machine.p
        )
        self._ref = refs[0]
        self._uid = [0] * machine.p
        self._sizes = [0] * machine.p  # driver-tracked heap sizes

    # ------------------------------------------------------------------
    def insert(self, per_pe_scores) -> None:
        """``insert*`` with random allocation: elements are routed to
        uniformly random PEs worker-to-worker (the communication cost
        this design pays and ours avoids)."""
        machine = self.machine
        p = machine.p
        if len(per_pe_scores) != p:
            raise ValueError(f"need one insertion batch per PE (p={p})")
        words = np.zeros((p, p), dtype=np.float64)
        routed: list[dict[int, list]] = []
        # routing draws are counter-addressed: destinations are needed
        # driver-side (size tracking + the sparse exchange's src lists)
        addr = machine.draw_addr()
        for i, scores in enumerate(per_pe_scores):
            scores = list(scores)
            buckets: dict[int, list] = {}
            if scores:
                dests = addr.local(i).integers(0, p, size=len(scores))
                for s, d in zip(scores, dests):
                    buckets.setdefault(int(d), []).append((s, (i, self._uid[i])))
                    self._uid[i] += 1
                for d, items in buckets.items():
                    # wire format: one word per score + two per uid
                    words[i][d] = 3 * len(items)
                    self._sizes[d] += len(items)
            routed.append(buckets)
        machine._meter_alltoall(words, mode="direct")
        srcs = [
            [i for i in range(p) if i != d and d in routed[i]] for d in range(p)
        ]
        _, ops = machine.backend.run_spmd(
            _kz_insert_kernel, [self._ref], n_out=0,
            args=[
                (sorted(routed[i].items()), srcs[i], p) for i in range(p)
            ],
        )
        machine.charge_ops([float(o) for o in ops])

    # ------------------------------------------------------------------
    @property
    def heaps(self) -> list[BinaryHeap]:
        """Driver-side view of the resident heaps (live objects on the
        in-process backend, fetched copies on real ones; tests only)."""
        return list(self.machine.backend.get_chunks(self._ref))

    def total_size(self) -> int:
        return int(self.machine.allreduce(list(self._sizes), op="sum")[0])

    def delete_min(self, k: int) -> tuple[tuple, ...]:
        """Remove the ``k`` globally smallest elements (exact, as in [31])."""
        total = self.total_size()
        if not 1 <= k <= total:
            raise ValueError(f"k must satisfy 1 <= k <= {total}, got {k}")
        machine = self.machine
        p = machine.p
        addr = machine.draw_addr()
        _, vals = machine.backend.run_spmd(
            _kz_delete_kernel, [self._ref], n_out=0,
            args=[(k, p, addr)] * p,
        )
        machine.replay_charges([v["log"] for v in vals])
        batches = tuple(v["batch"] for v in vals)
        for i, batch in enumerate(batches):
            self._sizes[i] -= len(batch)
        return batches

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomAllocPQ(p={self.machine.p})"
