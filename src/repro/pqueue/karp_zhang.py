"""Random-allocation bulk priority queue (Karp-Zhang [20] / Sanders [31]).

The baseline the paper improves on: every inserted element is *sent to a
random PE*, which keeps each local queue a representative sample of the
global content (so bulk deletions are easy and provably balanced) but
costs ``Theta(beta * k / p + alpha)`` communication per inserted batch --
the communication the Section 5 queue eliminates entirely.

``deleteMin*`` here follows [31]: an exact multisequence selection over
the local queues, then local extraction.  Comparing
:class:`RandomAllocPQ` against
:class:`~repro.pqueue.bulk_pq.BulkParallelPQ` in
``benchmarks/bench_priority_queue.py`` reproduces the Table 1 contrast
(old: ``log(n/k) + alpha*(k/p + log p)`` insert+delete vs. new:
``alpha log kp``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine import Machine
from ..selection.sorted_select import ms_select_with_cuts
from .heap import BinaryHeap

__all__ = ["RandomAllocPQ"]


class _HeapSeq:
    """Sorted-sequence view of a heap via a lazily sorted snapshot."""

    __slots__ = ("snapshot",)

    def __init__(self, heap: BinaryHeap):
        self.snapshot = sorted(heap.items())

    def __len__(self) -> int:
        return len(self.snapshot)

    def item(self, i: int):
        return self.snapshot[i]

    def count_le(self, v) -> int:
        import bisect

        return bisect.bisect_right(self.snapshot, v)


class RandomAllocPQ:
    """Bulk PQ with randomized element placement (the [20]/[31] design)."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.heaps = [BinaryHeap() for _ in range(machine.p)]
        self._uid = [0] * machine.p

    # ------------------------------------------------------------------
    def insert(self, per_pe_scores) -> None:
        """``insert*`` with random allocation: elements are routed to
        uniformly random PEs via an all-to-all (the communication cost
        this design pays and ours avoids)."""
        p = self.machine.p
        if len(per_pe_scores) != p:
            raise ValueError(f"need one insertion batch per PE (p={p})")
        matrix: list[list] = [[None] * p for _ in range(p)]
        routed: list[dict[int, list]] = []
        for i, scores in enumerate(per_pe_scores):
            scores = list(scores)
            buckets: dict[int, list] = {}
            if scores:
                dests = self.machine.rngs[i].integers(0, p, size=len(scores))
                for s, d in zip(scores, dests):
                    buckets.setdefault(int(d), []).append((s, (i, self._uid[i])))
                    self._uid[i] += 1
                for d, items in buckets.items():
                    # wire format: one word per score + two per uid
                    matrix[i][d] = np.zeros(3 * len(items))
            routed.append(buckets)
        self.machine.alltoall(matrix, mode="direct")
        # deliver the routed items into the destination heaps
        for i in range(p):
            for d, items in routed[i].items():
                heap = self.heaps[d]
                for it in items:
                    heap.push(it)
                self.machine.charge_ops_one(d, len(items) * np.log2(max(len(heap), 2)))

    # ------------------------------------------------------------------
    def total_size(self) -> int:
        return int(self.machine.allreduce([len(h) for h in self.heaps], op="sum")[0])

    def delete_min(self, k: int) -> tuple[tuple, ...]:
        """Remove the ``k`` globally smallest elements (exact, as in [31])."""
        total = self.total_size()
        if not 1 <= k <= total:
            raise ValueError(f"k must satisfy 1 <= k <= {total}, got {k}")
        seqs = [_HeapSeq(h) for h in self.heaps]
        for i, s in enumerate(seqs):
            # snapshot sort models the heap-ordered scan of [31]
            self.machine.charge_ops_one(
                i, max(1.0, min(len(s), k) * np.log2(max(len(s), 2)))
            )
        _, cuts = ms_select_with_cuts(self.machine, seqs, k)
        batches = []
        for i, c in enumerate(cuts):
            batch = tuple(self.heaps[i].pop_k(int(c)))
            batches.append(tuple((b[0], b[1]) for b in batch))
            self.machine.charge_ops_one(
                i, max(1.0, c * np.log2(max(len(self.heaps[i]) + c, 2)))
            )
        return tuple(batches)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomAllocPQ(p={self.machine.p})"
