"""Hashing utilities for the distributed hash table (Section 7).

The paper assumes a hash function that "behaves like a random function"
to spread keys uniformly over the PEs.  We use the splitmix64 finalizer
-- a cheap, well-mixed 64-bit permutation -- both scalar (for Python
dict keys) and vectorized (for NumPy key arrays).
"""

from __future__ import annotations

import numpy as np

from .. import kernels

__all__ = ["splitmix64", "splitmix64_array", "key_owner", "make_owner_fn"]

_MASK = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """Scalar splitmix64 finalizer: a fixed 64-bit mixing permutation."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return (x ^ (x >> 31)) & _MASK


def splitmix64_array(keys: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 over an integer key array (dispatches to
    the :data:`repro.kernels.splitmix64_array` kernel twins)."""
    x = np.asarray(keys).astype(np.uint64)
    with np.errstate(over="ignore"):
        return kernels.splitmix64_array(x)


def key_owner(keys: np.ndarray, p: int) -> np.ndarray:
    """Home PE of each key in a ``p``-PE distributed hash table."""
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    return (splitmix64_array(keys) % np.uint64(p)).astype(np.int64)


def make_owner_fn(p: int, salt: int = 0):
    """Scalar key -> owner-PE function (for dict-based exchanges).

    ``salt`` lets callers re-randomize placement (e.g. per query) without
    changing the machine seed.
    """
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")

    def owner(key) -> int:
        if isinstance(key, (int, np.integer)):
            h = splitmix64((int(key) ^ salt) & _MASK)
        else:
            h = splitmix64((hash(key) ^ salt) & _MASK)
        return int(h % p)

    return owner
