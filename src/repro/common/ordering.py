"""Order sentinels comparable with any key type.

The selection algorithms reduce candidate pivots with min/max across
PEs; PEs without a candidate contribute a neutral element.  For float
keys ``+-inf`` works, but the bulk priority queue selects over
``(score, uid)`` tuples, so we provide :data:`TOP` and :data:`BOTTOM` --
sentinels ordered above/below every other Python value.
"""

from __future__ import annotations

import functools

__all__ = ["TOP", "BOTTOM", "is_sentinel"]


@functools.total_ordering
class _Top:
    """Compares greater than every non-``TOP`` value."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __eq__(self, other):
        return other is self

    def __lt__(self, other):
        return False  # nothing is greater than TOP

    def __gt__(self, other):
        return other is not self

    def __hash__(self):
        return 0x70FF_7000

    def comm_words(self):
        return 1  # transmitted as a one-word marker

    def __repr__(self):
        return "TOP"


@functools.total_ordering
class _Bottom:
    """Compares smaller than every non-``BOTTOM`` value."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __eq__(self, other):
        return other is self

    def __lt__(self, other):
        return other is not self

    def __gt__(self, other):
        return False

    def __hash__(self):
        return 0x0B07_7000

    def comm_words(self):
        return 1  # transmitted as a one-word marker

    def __repr__(self):
        return "BOTTOM"


TOP = _Top()
BOTTOM = _Bottom()


def is_sentinel(x) -> bool:
    """True for :data:`TOP`, :data:`BOTTOM` and float infinities."""
    if x is TOP or x is BOTTOM:
        return True
    return isinstance(x, float) and (x == float("inf") or x == float("-inf"))
