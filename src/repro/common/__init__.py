"""Shared substrate: samplers, input distributions, hashing, validation."""

from .distributions import (
    GappedSpec,
    ZipfDistribution,
    gapped_sample,
    harmonic_number,
    negative_binomial_sample,
    zipf_sample,
)
from .hashing import key_owner, make_owner_fn, splitmix64, splitmix64_array
from .sampling import (
    bernoulli_sample,
    bernoulli_skip_indices,
    ec_sample_rate,
    geometric_rank,
    pac_sample_rate,
    weighted_sample_counts,
)

__all__ = [
    "GappedSpec",
    "ZipfDistribution",
    "bernoulli_sample",
    "bernoulli_skip_indices",
    "ec_sample_rate",
    "gapped_sample",
    "geometric_rank",
    "harmonic_number",
    "key_owner",
    "make_owner_fn",
    "negative_binomial_sample",
    "pac_sample_rate",
    "splitmix64",
    "splitmix64_array",
    "weighted_sample_counts",
    "zipf_sample",
]
