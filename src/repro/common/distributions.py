"""Input distributions used in the paper's evaluation (Section 10).

* **Bounded Zipf** with exponent ``s``: object ``i`` (1-based rank) has
  relative frequency ``i^-s / H_{N,s}`` where ``H_{N,s}`` is the
  generalized harmonic number.  The paper randomizes the universe size
  (``2^20 - 2^16 .. 2^20``) and the exponent (``s in [1, 1.2]``) per PE
  for the selection experiment, and uses a fixed universe of ``2^20``
  for the top-k most frequent objects experiments.
* **Negative binomial** (``r = 1000``, ``p_success = 0.05``): a wide
  plateau around the mode -- the most frequent objects all have very
  similar frequency, the hard case for sampling-based ranking.
* **Gapped** distributions: a configurable frequency gap after rank
  ``k`` (Figure 5), the case where the PEC algorithm of Section 7.3 can
  promise exact results.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = [
    "ZipfDistribution",
    "harmonic_number",
    "zipf_sample",
    "negative_binomial_sample",
    "gapped_sample",
    "GappedSpec",
]


@lru_cache(maxsize=64)
def _zipf_cdf(universe: int, s: float) -> np.ndarray:
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    weights = ranks**-s
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return cdf


def harmonic_number(n: int, s: float) -> float:
    """Generalized harmonic number ``H_{n,s} = sum_{i=1..n} i^-s``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return float(np.sum(np.arange(1, n + 1, dtype=np.float64) ** -s))


@dataclass(frozen=True)
class ZipfDistribution:
    """Bounded Zipf law: ``P[X = i] ∝ i^-s`` for ``i in 1..universe``."""

    universe: int
    s: float

    def __post_init__(self):
        if self.universe < 1:
            raise ValueError(f"universe must be >= 1, got {self.universe}")
        if self.s < 0:
            raise ValueError(f"exponent must be >= 0, got {self.s}")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` object ids (1-based ranks) by inverse CDF."""
        cdf = _zipf_cdf(self.universe, self.s)
        u = rng.random(size)
        return (np.searchsorted(cdf, u, side="right") + 1).astype(np.int64)

    def expected_count(self, rank: int, n: int) -> float:
        """Expected occurrences of the rank-``rank`` object among ``n`` draws."""
        h = harmonic_number(self.universe, self.s)
        return n * rank**-self.s / h

    def pmf(self) -> np.ndarray:
        """Probability of each object id ``1..universe``."""
        ranks = np.arange(1, self.universe + 1, dtype=np.float64)
        w = ranks**-self.s
        return w / w.sum()


def zipf_sample(
    rng: np.random.Generator, size: int, universe: int = 1 << 20, s: float = 1.0
) -> np.ndarray:
    """Convenience wrapper: ``size`` draws from a bounded Zipf law."""
    return ZipfDistribution(universe, s).sample(rng, size)


def negative_binomial_sample(
    rng: np.random.Generator, size: int, r: int = 1000, p_success: float = 0.05
) -> np.ndarray:
    """Keys from the paper's negative binomial workload (wide plateau)."""
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    if not 0.0 < p_success < 1.0:
        raise ValueError(f"p_success must be in (0, 1), got {p_success}")
    return rng.negative_binomial(r, p_success, size=size).astype(np.int64)


@dataclass(frozen=True)
class GappedSpec:
    """A frequency distribution with a gap after rank ``k`` (Figure 5).

    The top ``k`` objects each have relative weight ``head_weight``;
    the remaining ``universe - k`` objects share the rest uniformly.
    ``gap = head_weight / tail_weight`` controls how easy exact
    recovery is for the PEC algorithm.
    """

    universe: int
    k: int
    gap: float = 4.0

    def __post_init__(self):
        if not 1 <= self.k < self.universe:
            raise ValueError(f"need 1 <= k < universe, got k={self.k}, universe={self.universe}")
        if self.gap <= 1.0:
            raise ValueError(f"gap must exceed 1, got {self.gap}")

    def pmf(self) -> np.ndarray:
        w = np.ones(self.universe, dtype=np.float64)
        w[: self.k] = self.gap
        return w / w.sum()

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        cdf = np.cumsum(self.pmf())
        u = rng.random(size)
        return (np.searchsorted(cdf, u, side="right") + 1).astype(np.int64)


def gapped_sample(
    rng: np.random.Generator,
    size: int,
    universe: int = 1 << 12,
    k: int = 32,
    gap: float = 4.0,
) -> np.ndarray:
    """Keys whose frequency distribution has a factor-``gap`` jump after
    rank ``k`` -- the PEC-friendly case."""
    return GappedSpec(universe, k, gap).sample(rng, size)
