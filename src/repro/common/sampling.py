"""Sampling primitives (Section 2 "Bernoulli sampling", Section 8.1).

The algorithms rely on two samplers:

* **Bernoulli sampling** -- include every element independently with
  probability ``rho``.  The naive scan costs ``O(|M|)``; the paper's
  skip-value technique (geometric gaps between successes) brings the
  expected cost down to ``O(rho * |M|)``.  :func:`bernoulli_sample` uses
  the mathematically equivalent vectorized form (draw the Binomial
  count, then a uniform subset); :func:`bernoulli_skip_indices` exposes
  the skip-value formulation itself, which is also what the flexible
  selection algorithm of Section 4.3 exploits: on *sorted* data the
  local rank of the smallest sampled element is geometrically
  distributed, so it can be generated in O(1).

* **Count-weighted sampling** (Section 8.1) -- an object with count
  ``v`` contributes ``floor(v / v_avg)`` samples deterministically plus
  one more with probability ``frac(v / v_avg)``, keeping per-object cost
  constant and the estimator unbiased.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bernoulli_sample",
    "bernoulli_sample_indices",
    "bernoulli_skip_indices",
    "geometric_rank",
    "weighted_sample_counts",
    "pac_sample_rate",
    "ec_sample_rate",
]


def bernoulli_sample_indices(
    rng: np.random.Generator, n: int, rho: float
) -> np.ndarray | None:
    """Index set of a Bernoulli(rho) sample of ``n`` elements.

    The draw sequence is exactly that of :func:`bernoulli_sample`, so
    the two formulations are interchangeable without perturbing the RNG
    stream.  Only the indices are produced -- the element *extraction*
    can then happen wherever the data lives (the resident-chunk
    execution path ships these small index arrays to the workers
    instead of pulling the chunks to the driver).  Returns ``None`` as
    the "take everything" sentinel when ``rho >= 1``.
    """
    if not 0.0 <= rho <= 1.0:
        raise ValueError(f"sampling probability must be in [0, 1], got {rho}")
    if n == 0 or rho == 0.0:
        return np.empty(0, dtype=np.int64)
    if rho >= 1.0:
        return None
    count = rng.binomial(n, rho)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    return rng.choice(n, size=count, replace=False)


def bernoulli_sample(rng: np.random.Generator, data: np.ndarray, rho: float) -> np.ndarray:
    """Bernoulli sample of ``data`` with inclusion probability ``rho``.

    Equivalent to flipping an independent coin per element: the sample
    size is ``Binomial(len(data), rho)`` and, conditioned on its size,
    the sample is a uniform subset.  Returns the sampled elements (order
    not meaningful).
    """
    idx = bernoulli_sample_indices(rng, len(data), rho)
    if idx is None:
        return np.asarray(data).copy()
    return np.asarray(data)[idx]


def bernoulli_skip_indices(rng: np.random.Generator, n: int, rho: float) -> np.ndarray:
    """Indices of a Bernoulli(rho) sample of ``0..n-1`` via geometric skips.

    This is the paper's ``O(rho * n)`` expected-time formulation: skip
    values follow a geometric distribution with parameter ``rho``.
    """
    if not 0.0 < rho <= 1.0:
        if rho == 0.0:
            return np.empty(0, dtype=np.int64)
        raise ValueError(f"sampling probability must be in [0, 1], got {rho}")
    if n == 0:
        return np.empty(0, dtype=np.int64)
    # draw enough geometric gaps to cover n with high probability, then
    # extend in the rare shortfall case
    expected = int(rho * n) + 1
    gaps = rng.geometric(rho, size=max(16, int(1.5 * expected) + 8))
    pos = np.cumsum(gaps) - 1  # first success at gap-1 (0-based)
    while pos.size and pos[-1] < n - 1:
        more = rng.geometric(rho, size=max(16, expected // 2 + 8))
        pos = np.concatenate([pos, pos[-1] + np.cumsum(more)])
    return pos[pos < n].astype(np.int64)


def geometric_rank(rng: np.random.Generator, rho: float) -> int:
    """Rank (1-based) of the first success of a Bernoulli(rho) process.

    Used by ``amsSelect`` (Algorithm 2): on locally sorted data, the
    local rank of the smallest sampled element is ``Geometric(rho)``
    and can be generated in constant time
    (``geometricRandomDeviate`` in the paper's pseudocode).
    """
    if not 0.0 < rho <= 1.0:
        raise ValueError(f"success probability must be in (0, 1], got {rho}")
    return int(rng.geometric(rho))


def weighted_sample_counts(
    rng: np.random.Generator, values: np.ndarray, v_avg: float
) -> np.ndarray:
    """Per-object sample counts for sum aggregation (Section 8.1).

    An object with non-negative count ``v`` yields
    ``floor(v / v_avg) + Bernoulli(frac(v / v_avg))`` samples, so
    ``E[samples] = v / v_avg`` exactly, and the randomness per key on one
    PE is a single Bernoulli trial (the deviation from the expectation is
    at most 1 per key and PE -- the property Theorem 15's Hoeffding
    argument needs).
    """
    values = np.asarray(values, dtype=np.float64)
    if np.any(values < 0):
        raise ValueError("sum aggregation requires non-negative counts")
    if v_avg <= 0:
        raise ValueError(f"v_avg must be positive, got {v_avg}")
    scaled = values / v_avg
    base = np.floor(scaled)
    frac = scaled - base
    extra = rng.random(len(values)) < frac
    return (base + extra).astype(np.int64)


# ----------------------------------------------------------------------
# Sample-size formulas from Section 7
# ----------------------------------------------------------------------

def pac_sample_rate(n: int, k: int, eps: float, delta: float) -> float:
    """Sampling probability of Algorithm PAC (Equation 3).

    ``rho * n >= (4 / eps^2) * max((3/k) ln(2n/delta), 2 ln(2k/delta))``
    guarantees an (eps, delta)-approximation of the top-k most frequent
    objects.  Returns ``min(1, rho)``.
    """
    _check_eps_delta(eps, delta)
    if n <= 0:
        return 1.0
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    need = (4.0 / eps**2) * max(
        3.0 / k * np.log(2.0 * n / delta),
        2.0 * np.log(2.0 * k / delta),
    )
    return float(min(1.0, need / n))


def ec_sample_rate(n: int, k_star: int, eps: float, delta: float) -> float:
    """Sampling probability of Algorithm EC (Lemma 10).

    When the ``k_star`` most frequently sampled objects are counted
    exactly, ``rho * n >= (2 / (eps^2 * k_star)) * ln(n / delta)``
    suffices -- a factor ``Theta(k_star)`` smaller than PAC's rate.
    """
    _check_eps_delta(eps, delta)
    if n <= 0:
        return 1.0
    if k_star < 1:
        raise ValueError(f"k_star must be >= 1, got {k_star}")
    need = 2.0 / (eps**2 * k_star) * np.log(n / delta)
    return float(min(1.0, need / n))


def _check_eps_delta(eps: float, delta: float) -> None:
    if not 0.0 < eps < 1.0:
        raise ValueError(f"relative error eps must be in (0, 1), got {eps}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"failure probability delta must be in (0, 1), got {delta}")
