"""Shared argument-validation helpers for the public API."""

from __future__ import annotations

__all__ = ["check_rank", "check_rank_range", "check_positive", "check_probability"]


def check_rank(k: int, n: int, what: str = "k") -> int:
    """Validate a selection rank ``1 <= k <= n``."""
    k = int(k)
    if not 1 <= k <= n:
        raise ValueError(f"{what} must satisfy 1 <= {what} <= n={n}, got {k}")
    return k


def check_rank_range(k_lo: int, k_hi: int, n: int) -> tuple[int, int]:
    """Validate a flexible selection range ``1 <= k_lo <= k_hi <= n``."""
    k_lo, k_hi = int(k_lo), int(k_hi)
    if not 1 <= k_lo <= k_hi <= n:
        raise ValueError(
            f"flexible rank range must satisfy 1 <= k_lo <= k_hi <= n={n}, "
            f"got [{k_lo}, {k_hi}]"
        )
    return k_lo, k_hi


def check_positive(x, what: str):
    if x <= 0:
        raise ValueError(f"{what} must be positive, got {x}")
    return x


def check_probability(x: float, what: str, *, open_left: bool = True) -> float:
    lo_ok = x > 0.0 if open_left else x >= 0.0
    if not (lo_ok and x <= 1.0):
        raise ValueError(f"{what} must be a probability in {'(' if open_left else '['}0, 1], got {x}")
    return float(x)
